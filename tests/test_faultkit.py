"""Tests for :mod:`repro.faultkit` — deterministic seeded fault injection.

Every decision must be a pure function of (plan seed, kind, token,
attempt): two processes, or a worker and its post-respawn replacement,
must agree on every fault, or chaos scenarios would be unreproducible and
the supervision tests flaky by construction.
"""

import dataclasses

import pytest

from repro.faultkit import (
    ARTIFACT_FAULT_KINDS,
    JOB_FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    maybe_inject,
)
from repro.sim.cache import ResultCache
from repro.trace.store import TraceStore


class TestFaultPlanParsing:
    def test_parse_round_trips_through_to_text(self):
        plan = FaultPlan.parse("seed=7,crash=0.2,hang=0.1,transient=0.3,"
                               "corrupt_result=0.4,sticky=crash@gcc:ir,"
                               "deadline=15,backoff=0.05,attempts=2,"
                               "compiled_only=1,interrupt_after=3")
        assert plan.seed == 7
        assert plan.crash == 0.2
        assert plan.sticky == ("crash@gcc:ir",)
        assert plan.deadline == 15.0
        assert plan.attempts == 2
        assert plan.compiled_only is True
        assert plan.interrupt_after == 3
        assert FaultPlan.parse(plan.to_text()) == plan

    def test_parse_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("seed=1,segfault=0.5")
        with pytest.raises(ValueError):
            FaultPlan.parse("justakey")

    def test_multiple_sticky_entries_semicolon_separated(self):
        plan = FaultPlan.parse("sticky=crash@gcc:ir;hang@gzip:cr")
        assert plan.sticky == ("crash@gcc:ir", "hang@gzip:cr")
        assert FaultPlan.parse(plan.to_text()).sticky == plan.sticky

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", "seed=3,transient=0.5")
        plan = FaultPlan.from_env()
        assert plan == FaultPlan(seed=3, transient=0.5)


class TestFaultDecisions:
    def test_decisions_are_deterministic(self):
        plan = FaultPlan(seed=42, crash=0.1, hang=0.1, transient=0.2,
                         slow=0.1)
        tokens = [f"bench{i}:ir:{i:012x}" for i in range(50)]
        first = [plan.fault_for(token, 0) for token in tokens]
        second = [plan.fault_for(token, 0) for token in tokens]
        assert first == second
        # A re-parsed plan (what a respawned worker sees) agrees too.
        reparsed = FaultPlan.parse(plan.to_text())
        assert [reparsed.fault_for(t, 0) for t in tokens] == first

    def test_rates_partition_one_draw(self):
        """Raising one kind's rate never flips a decision of another kind."""
        low = FaultPlan(seed=9, crash=0.1, transient=0.1)
        high = FaultPlan(seed=9, crash=0.1, transient=0.4)
        for i in range(200):
            token = f"b:p:{i:012x}"
            if low.fault_for(token, 0) == "crash":
                assert high.fault_for(token, 0) == "crash"

    def test_zero_rates_never_fire(self):
        plan = FaultPlan(seed=1)
        assert not plan.any_job_faults()
        assert all(plan.fault_for(f"t{i}", 0) is None for i in range(100))

    def test_faults_spare_retries_by_default(self):
        """max_attempt=1: only the first attempt faults, so retries converge."""
        plan = FaultPlan(seed=5, transient=1.0)
        assert plan.fault_for("gcc:ir:abc", 0) == "transient"
        assert plan.fault_for("gcc:ir:abc", 1) is None

    def test_sticky_fires_every_attempt(self):
        plan = FaultPlan(seed=5, sticky=("crash@gcc:ir",))
        for attempt in range(5):
            assert plan.fault_for("gcc:ir:abc123", attempt) == "crash"
        assert plan.fault_for("gzip:ir:abc123", 0) is None

    def test_artifact_faults_keyed_independently(self):
        plan = FaultPlan(seed=8, corrupt_result=0.5, corrupt_trace=0.5)
        keys = [f"{i:064x}" for i in range(100)]
        fired = {kind: [plan.artifact_fault(kind, k) for k in keys]
                 for kind in ARTIFACT_FAULT_KINDS}
        # Deterministic, and the two kinds make independent decisions.
        assert fired["corrupt_result"] != fired["corrupt_trace"]
        assert any(fired["corrupt_result"]) and any(fired["corrupt_trace"])
        with pytest.raises(ValueError):
            plan.artifact_fault("nonsense", keys[0])


class TestMaybeInject:
    def test_none_plan_is_a_no_op(self):
        maybe_inject(None, "gcc:ir", 0, None, in_worker=False)

    def test_serial_crash_becomes_injected_fault(self):
        """In-process a crash cannot SIGKILL (it would kill the campaign)."""
        plan = FaultPlan(seed=1, sticky=("crash@gcc:ir",))
        with pytest.raises(InjectedFault):
            maybe_inject(plan, "gcc:ir:fff", 0, None, in_worker=False)

    def test_serial_hang_becomes_injected_fault(self):
        plan = FaultPlan(seed=1, sticky=("hang@gcc:ir",), hang_delay=999.0)
        with pytest.raises(InjectedFault):
            maybe_inject(plan, "gcc:ir:fff", 0, None, in_worker=False)

    def test_transient_raises_everywhere(self):
        plan = FaultPlan(seed=1, transient=1.0)
        with pytest.raises(InjectedFault):
            maybe_inject(plan, "gcc:ir:fff", 0, None, in_worker=True)

    def test_compiled_only_spares_python_attempts(self):
        plan = FaultPlan(seed=1, transient=1.0, compiled_only=True)
        # Explicit python backend: the degraded retry must run clean.
        maybe_inject(plan, "gcc:ir:fff", 0, "python", in_worker=False)
        with pytest.raises(InjectedFault):
            maybe_inject(plan, "gcc:ir:fff", 0, "compiled", in_worker=False)


class TestFaultInjector:
    def _cached_result(self, tmp_path):
        from repro.sim.simulator import simulate
        from repro.trace.profiles import get_profile
        from repro.trace.synthetic import generate_trace

        trace = generate_trace(get_profile("gcc"), 300, seed=1)
        result = simulate(trace)
        cache = ResultCache(tmp_path / "results")
        key = "ab" + "0" * 62
        cache.store(key, result)
        return cache, key, result

    def test_corrupt_result_entry_fires_once_and_counts(self, tmp_path):
        cache, key, result = self._cached_result(tmp_path)
        injector = FaultInjector(FaultPlan(seed=2, corrupt_result=1.0))
        assert injector.corrupt_result_entry(cache, key)
        assert injector.fired == {"corrupt_result": 1}
        # At most once per key: the second call is a no-op.
        assert not injector.corrupt_result_entry(cache, key)
        # The corrupted entry fails verify and is healed by the rewrite.
        assert not cache.verify(key, result)
        assert cache.healed == 1
        assert cache.verify(key, result)

    def test_corrupt_trace_entry_truncates(self, tmp_path):
        from repro.trace.profiles import get_profile
        from repro.trace.store import trace_key
        from repro.trace.synthetic import generate_trace

        store = TraceStore(tmp_path / "traces")
        profile = get_profile("gzip")
        trace = generate_trace(profile, 300, seed=2)
        key = trace_key(profile, 300, 2, False)
        store.store(key, trace)
        intact = store.path_for(key).stat().st_size
        injector = FaultInjector(FaultPlan(seed=2, corrupt_trace=1.0))
        assert injector.corrupt_trace_entry(store, key)
        assert store.path_for(key).stat().st_size < intact
        assert store.load(key) is None  # detected, dropped
        assert store.corrupt_drops == 1

    def test_after_completion_interrupts_on_schedule(self):
        injector = FaultInjector(FaultPlan(seed=1, interrupt_after=2))
        injector.after_completion()
        with pytest.raises(KeyboardInterrupt):
            injector.after_completion()
        assert injector.fired.get("interrupt") == 1

    def test_plan_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            FaultPlan().seed = 1
