"""Tests for config, cluster/backends, imbalance, copy engine and splitting."""

import pytest

from repro.core.cluster import Backend, BackendKind
from repro.core.config import (
    TABLE_1_PARAMETERS,
    HelperClusterConfig,
    MachineConfig,
    PredictorConfig,
    SchedulerConfig,
    baseline_config,
    helper_cluster_config,
)
from repro.core.copy_engine import CopyEngine
from repro.core.imbalance import ImbalanceMonitor, ImbalanceSample
from repro.core.splitting import InstructionSplitter
from repro.isa.opcodes import Opcode
from repro.isa.registers import ArchReg
from repro.isa.uop import UopBuilder
from repro.isa.values import join_bytes, split_bytes
from repro.pipeline.clocking import ClockDomain


class TestConfig:
    def test_baseline_has_no_helper(self):
        config = baseline_config()
        assert not config.helper.enabled
        assert config.clock_ratio == 1

    def test_helper_config_defaults_match_paper(self):
        config = helper_cluster_config()
        assert config.helper.enabled
        assert config.helper.narrow_width == 8
        assert config.helper.clock_ratio == 2
        assert config.predictor.table_entries == 256
        assert config.scheduler.queue_size == 32
        assert config.scheduler.issue_width == 3
        assert config.commit_width == 6

    def test_table1_text(self):
        assert "Main Memory" in TABLE_1_PARAMETERS
        assert TABLE_1_PARAMETERS["Commit Width"] == "6 instructions"

    def test_split_chunks(self):
        assert HelperClusterConfig(narrow_width=8).split_chunks == 4
        assert HelperClusterConfig(narrow_width=16).split_chunks == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            HelperClusterConfig(narrow_width=0)
        with pytest.raises(ValueError):
            HelperClusterConfig(clock_ratio=0)
        with pytest.raises(ValueError):
            SchedulerConfig(queue_size=0)
        with pytest.raises(ValueError):
            PredictorConfig(table_entries=100)
        with pytest.raises(ValueError):
            MachineConfig(fetch_width=0)

    def test_with_helpers(self):
        config = helper_cluster_config()
        ablation = config.with_helper(clock_ratio=1).with_predictor(table_entries=64)
        assert ablation.helper.clock_ratio == 1
        assert ablation.predictor.table_entries == 64
        assert config.helper.clock_ratio == 2  # original untouched

    def test_with_scheduler(self):
        config = helper_cluster_config().with_scheduler(queue_size=16)
        assert config.scheduler.queue_size == 16


class TestBackend:
    def test_wide_backend_properties(self):
        backend = Backend(BackendKind.WIDE, helper_cluster_config())
        assert backend.domain is ClockDomain.WIDE
        assert not backend.is_narrow
        assert backend.datapath_width == 32
        assert backend.units.supports(Opcode.FADD)

    def test_narrow_backend_properties(self):
        backend = Backend(BackendKind.NARROW, helper_cluster_config())
        assert backend.is_narrow
        assert backend.datapath_width == 8
        assert not backend.units.supports(Opcode.FADD)
        assert backend.units.supports(Opcode.ADD)

    def test_activity_schedule(self):
        config = helper_cluster_config()
        wide = Backend(BackendKind.WIDE, config)
        narrow = Backend(BackendKind.NARROW, config)
        assert wide.active(0) and not wide.active(1)
        assert narrow.active(0) and narrow.active(1)

    def test_width_check(self):
        narrow = Backend(BackendKind.NARROW, helper_cluster_config())
        assert narrow.can_execute_width(value_is_narrow=True)
        assert not narrow.can_execute_width(value_is_narrow=False)

    def test_reset(self):
        backend = Backend(BackendKind.NARROW, helper_cluster_config())
        backend.stats.dispatched = 5
        backend.reset()
        assert backend.stats.dispatched == 0


class TestImbalanceMonitor:
    @staticmethod
    def sample(wide_blocked=0, narrow_blocked=0, wide_free=3, narrow_free=3,
               wide_occ=0, narrow_occ=0, cycle=0):
        return ImbalanceSample(fast_cycle=cycle, wide_ready_blocked=wide_blocked,
                               narrow_ready_blocked=narrow_blocked,
                               wide_free_slots=wide_free, narrow_free_slots=narrow_free,
                               wide_occupancy=wide_occ, narrow_occupancy=narrow_occ)

    def test_empty_monitor(self):
        monitor = ImbalanceMonitor()
        assert monitor.wide_to_narrow_imbalance() == 0.0
        assert monitor.narrow_to_wide_imbalance() == 0.0

    def test_wide_to_narrow_nready(self):
        monitor = ImbalanceMonitor()
        monitor.record(self.sample(wide_blocked=4, narrow_free=3, wide_occ=10,
                                   narrow_occ=1))
        assert monitor.wide_to_narrow_nready == 3  # capped by free narrow slots
        assert monitor.wide_to_narrow_imbalance() > 0

    def test_narrow_to_wide_nready(self):
        monitor = ImbalanceMonitor()
        monitor.record(self.sample(narrow_blocked=2, wide_free=1, wide_occ=1,
                                   narrow_occ=10))
        assert monitor.narrow_to_wide_nready == 1

    def test_underutilised_requires_congested_wide_queue(self):
        monitor = ImbalanceMonitor(queue_size=32)
        monitor.record(self.sample(wide_occ=10, narrow_occ=2))
        assert not monitor.helper_underutilised()   # wide queue not congested
        monitor.record(self.sample(wide_occ=30, narrow_occ=2))
        assert monitor.helper_underutilised()

    def test_underutilised_requires_gap(self):
        monitor = ImbalanceMonitor(queue_size=32)
        monitor.record(self.sample(wide_occ=30, narrow_occ=29))
        assert not monitor.helper_underutilised()

    def test_overloaded(self):
        monitor = ImbalanceMonitor(queue_size=32)
        monitor.record(self.sample(wide_occ=2, narrow_occ=30))
        assert monitor.helper_overloaded()
        assert not monitor.helper_underutilised()

    def test_mean_occupancies(self):
        monitor = ImbalanceMonitor()
        monitor.record(self.sample(wide_occ=10, narrow_occ=4))
        monitor.record(self.sample(wide_occ=20, narrow_occ=8))
        assert monitor.mean_wide_occupancy() == 15
        assert monitor.mean_narrow_occupancy() == 6

    def test_reset(self):
        monitor = ImbalanceMonitor()
        monitor.record(self.sample(wide_occ=10, narrow_occ=1, wide_blocked=3))
        monitor.reset()
        assert monitor.samples == 0
        assert monitor.wide_to_narrow_imbalance() == 0.0


class TestCopyEngine:
    def test_unknown_value_is_available_everywhere(self):
        engine = CopyEngine()
        assert not engine.needs_copy(42, ClockDomain.WIDE)

    def test_produced_value_needs_copy_in_other_cluster(self):
        engine = CopyEngine()
        engine.note_produced(1, ClockDomain.NARROW, ready_cycle=10)
        assert not engine.needs_copy(1, ClockDomain.NARROW)
        assert engine.needs_copy(1, ClockDomain.WIDE)
        assert engine.availability(1, ClockDomain.NARROW) == 10
        assert engine.availability(1, ClockDomain.WIDE) is None

    def test_copy_lifecycle(self):
        engine = CopyEngine()
        engine.note_produced(1, ClockDomain.NARROW, 10)
        request = engine.request_copy(1, ClockDomain.NARROW, ClockDomain.WIDE)
        assert engine.copy_in_flight(1, ClockDomain.WIDE)
        assert not engine.needs_copy(1, ClockDomain.WIDE)  # already pending
        engine.complete_copy(request, ready_cycle=14)
        assert not engine.copy_in_flight(1, ClockDomain.WIDE)
        assert engine.availability(1, ClockDomain.WIDE) == 14

    def test_cancel_copy(self):
        engine = CopyEngine()
        engine.note_produced(1, ClockDomain.NARROW, 10)
        request = engine.request_copy(1, ClockDomain.NARROW, ClockDomain.WIDE)
        engine.cancel_copy(request)
        assert not engine.copy_in_flight(1, ClockDomain.WIDE)
        assert engine.availability(1, ClockDomain.WIDE) is None

    def test_same_domain_copy_rejected(self):
        engine = CopyEngine()
        with pytest.raises(ValueError):
            engine.request_copy(1, ClockDomain.WIDE, ClockDomain.WIDE)

    def test_replication_makes_both_clusters_available(self):
        engine = CopyEngine()
        engine.note_produced(5, ClockDomain.WIDE, 20)
        engine.note_replicated(5, 20)
        assert engine.availability(5, ClockDomain.NARROW) is not None
        assert engine.stats.replicated_loads == 1

    def test_stats(self):
        engine = CopyEngine()
        engine.note_produced(1, ClockDomain.NARROW, 0)
        engine.request_copy(1, ClockDomain.NARROW, ClockDomain.WIDE)
        engine.request_copy(2, ClockDomain.WIDE, ClockDomain.NARROW, prefetch=True)
        engine.note_prefetch_useful()
        assert engine.stats.copies_generated == 2
        assert engine.stats.demand_copies == 1
        assert engine.stats.prefetched_copies == 1
        assert engine.stats.prefetch_accuracy == 1.0

    def test_retire_and_reset(self):
        engine = CopyEngine()
        engine.note_produced(1, ClockDomain.WIDE, 0)
        engine.retire_value(1)
        assert not engine.available_anywhere(1)
        engine.note_produced(2, ClockDomain.WIDE, 0)
        engine.reset()
        assert not engine.available_anywhere(2)

    def test_domains_available(self):
        engine = CopyEngine()
        engine.note_produced(1, ClockDomain.WIDE, 0)
        assert engine.domains_available(1) == [ClockDomain.WIDE]
        assert engine.domains_available(99) == []


class TestInstructionSplitter:
    def _uop(self, opcode=Opcode.ADD, dest=ArchReg.EAX):
        builder = UopBuilder()
        return builder.make(opcode, srcs=(ArchReg.EBX, ArchReg.ECX), dest=dest)

    def test_add_splits_into_chained_chunks(self):
        splitter = InstructionSplitter()
        plan = splitter.plan(self._uop(Opcode.ADD))
        assert plan is not None
        assert plan.num_chunks == 4
        assert not plan.chunks[0].depends_on_previous
        assert all(c.depends_on_previous for c in plan.chunks[1:])
        assert plan.copy_backs == 4
        assert plan.total_uops == 8

    def test_logic_chunks_independent(self):
        splitter = InstructionSplitter()
        plan = splitter.plan(self._uop(Opcode.XOR))
        assert plan is not None
        assert all(not c.depends_on_previous for c in plan.chunks)

    def test_mul_not_splittable(self):
        splitter = InstructionSplitter()
        assert splitter.plan(self._uop(Opcode.MUL)) is None
        assert splitter.stats.rejected_not_splittable == 1

    def test_no_dest_mode_rejects_dest_ops(self):
        splitter = InstructionSplitter(require_no_dest=True)
        assert splitter.plan(self._uop(Opcode.ADD)) is None
        assert splitter.stats.rejected_has_dest == 1

    def test_no_dest_mode_accepts_compare(self):
        splitter = InstructionSplitter(require_no_dest=True)
        builder = UopBuilder()
        cmp_uop = builder.make(Opcode.CMP, srcs=(ArchReg.EAX, ArchReg.EBX))
        plan = splitter.plan(cmp_uop)
        assert plan is not None
        assert plan.copy_backs == 0

    def test_store_splittable_without_copy_backs(self):
        splitter = InstructionSplitter()
        builder = UopBuilder()
        store = builder.store(ArchReg.EAX, ArchReg.ESI, ArchReg.ECX)
        plan = splitter.plan(store)
        assert plan is not None and plan.copy_backs == 0

    def test_chunk_values_roundtrip(self):
        splitter = InstructionSplitter()
        value = 0xDEADBEEF
        chunks = splitter.chunk_values(value)
        assert chunks == split_bytes(value)
        assert join_bytes(chunks) == value

    def test_wider_narrow_width(self):
        splitter = InstructionSplitter(narrow_width=16)
        plan = splitter.plan(self._uop(Opcode.ADD))
        assert plan is not None and plan.num_chunks == 2

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            InstructionSplitter(narrow_width=12)

    def test_stats_and_reset(self):
        splitter = InstructionSplitter()
        splitter.plan(self._uop(Opcode.ADD))
        assert splitter.stats.split_instructions == 1
        assert splitter.stats.chunks_created == 4
        splitter.reset()
        assert splitter.stats.split_instructions == 0
