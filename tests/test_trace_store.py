"""Cross-job trace store: one generation per distinct trace, everywhere.

The engine's contract (DESIGN.md "Cross-job trace store"): a sweep performs
exactly one `generate_trace` per distinct (profile, length, seed, slicing)
tuple — serial, parallel or warm-directory — and serial ≡ parallel ≡ cached
results stay bit-identical.  `repro.trace.synthetic.GENERATION_STATS` is the
process-wide counter these tests assert against.
"""

from __future__ import annotations

import pickle

import pytest

from repro.sim import engine as engine_mod
from repro.sim.engine import SweepEngine, SweepJob, trace_for_job
from repro.trace.profiles import get_profile
from repro.trace.serialization import load_trace_binary, save_trace_binary
from repro.trace.store import TraceStore, trace_key
from repro.trace.synthetic import GENERATION_STATS, generate_trace

UOPS = 1_200
SEED = 2006
LADDER = ["n888", "n888_br", "n888_br_lr", "n888_br_lr_cr",
          "n888_br_lr_cr_cp", "ir", "ir_nodest", "n888+cr"]


@pytest.fixture(autouse=True)
def _fresh_trace_state():
    """Each test starts with an empty in-process memo and a known counter."""
    engine_mod._trace_memo.clear()
    start = GENERATION_STATS.count
    yield
    del start


def _fingerprint(results):
    return {job: (r.ipc, r.fast_cycles, r.energy) for job, r in results.items()}


def _ladder_jobs(benchmarks):
    jobs = []
    for benchmark in benchmarks:
        jobs.append(SweepJob(benchmark, "baseline", UOPS, SEED))
        for policy in LADDER:
            jobs.append(SweepJob(benchmark, policy, UOPS, SEED))
    return jobs


class TestGenerationCounting:
    def test_serial_ladder_generates_each_trace_once(self, tmp_path):
        engine = SweepEngine(jobs=1, trace_store_dir=str(tmp_path))
        jobs = _ladder_jobs(["gcc", "gzip"])
        before = GENERATION_STATS.count
        engine.run_jobs(jobs)
        # Nine jobs per benchmark (baseline + the 8-policy ladder) share one
        # trace; two benchmarks => exactly two generations.
        assert GENERATION_STATS.count - before == 2
        assert engine.trace_store.stores == 2

    def test_parallel_ladder_generates_each_trace_once(self, tmp_path):
        engine = SweepEngine(jobs=2, trace_store_dir=str(tmp_path),
                             allow_oversubscribe=True)
        jobs = _ladder_jobs(["gcc"])
        before = GENERATION_STATS.count
        try:
            parallel = engine.run_jobs(jobs)
        finally:
            engine.close()
        # The parent pre-generates the single distinct trace; workers
        # inherit the memo (fork) or re-hydrate from the store (spawn) —
        # the parent-side counter sees exactly one generation either way.
        assert GENERATION_STATS.count - before == 1
        assert engine.trace_store.stores == 1

        engine_mod._trace_memo.clear()
        serial = SweepEngine(jobs=1).run_jobs(jobs)
        assert _fingerprint(parallel) == _fingerprint(serial)

    def test_warm_store_skips_generation_entirely(self, tmp_path):
        cold = SweepEngine(jobs=1, trace_store_dir=str(tmp_path))
        jobs = _ladder_jobs(["parser"])
        cold_results = cold.run_jobs(jobs)

        # A fresh process is modelled by clearing the in-process memo; the
        # warm store directory must satisfy every trace without generating.
        engine_mod._trace_memo.clear()
        warm = SweepEngine(jobs=1, trace_store_dir=str(tmp_path))
        before = GENERATION_STATS.count
        warm_results = warm.run_jobs(jobs)
        assert GENERATION_STATS.count == before
        assert warm.trace_store.hits == 1
        assert _fingerprint(warm_results) == _fingerprint(cold_results)

    def test_sliced_jobs_key_separately(self, tmp_path):
        engine = SweepEngine(jobs=1, trace_store_dir=str(tmp_path))
        plain = SweepJob("gcc", "n888", UOPS, SEED, use_slicing=False)
        sliced = SweepJob("gcc", "n888", UOPS, SEED, use_slicing=True)
        before = GENERATION_STATS.count
        engine.run_jobs([plain, sliced])
        assert GENERATION_STATS.count - before == 2
        profile = get_profile("gcc")
        assert (trace_key(profile, UOPS, SEED, False)
                != trace_key(profile, UOPS, SEED, True))


class TestTraceStore:
    def test_round_trip_is_bit_identical(self, tmp_path):
        trace = generate_trace(get_profile("gcc"), 800, seed=3)
        store = TraceStore(tmp_path)
        key = trace_key(get_profile("gcc"), 800, 3, False)
        store.store(key, trace)
        loaded = store.load(key)
        assert pickle.dumps(loaded) == pickle.dumps(trace)
        assert store.stats() == {"hits": 1, "misses": 0, "stores": 1,
                                 "corrupt_drops": 0, "healed": 0}

    def test_corrupt_entry_is_dropped_and_regenerated(self, tmp_path):
        profile = get_profile("gzip")
        store = TraceStore(tmp_path)
        key = trace_key(profile, 600, 9, False)
        store.store(key, generate_trace(profile, 600, seed=9))
        path = store.path_for(key)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))

        fresh = TraceStore(tmp_path)
        assert fresh.load(key) is None
        assert fresh.corrupt_drops == 1
        assert not path.exists()

        # trace_for_job treats the miss as a regeneration + re-store.
        job = SweepJob("gzip", "n888", 600, 9)
        before = GENERATION_STATS.count
        trace = trace_for_job(job, profile, fresh)
        assert GENERATION_STATS.count - before == 1
        assert fresh.stores == 1
        assert len(trace) >= 600

    def test_binary_serialization_detects_truncation(self, tmp_path):
        trace = generate_trace(get_profile("gcc"), 300, seed=1)
        path = tmp_path / "t.bin"
        save_trace_binary(trace, path)
        assert pickle.dumps(load_trace_binary(path)) == pickle.dumps(trace)
        path.write_bytes(path.read_bytes()[:64])
        with pytest.raises(ValueError):
            load_trace_binary(path)

    def test_memo_hit_still_populates_a_fresh_store(self, tmp_path):
        # The memo is process-global while stores are per-engine: a memo
        # hit must still seed the *current* store, or spawn-started workers
        # of a second engine would regenerate the trace.
        profile = get_profile("gcc")
        job = SweepJob("gcc", "n888", 700, 11)
        store_a = TraceStore(tmp_path / "a")
        trace_for_job(job, profile, store_a)
        before = GENERATION_STATS.count
        store_b = TraceStore(tmp_path / "b")
        trace_for_job(job, profile, store_b)
        assert GENERATION_STATS.count == before
        assert store_b.stores == 1
        assert store_b.path_for(trace_key(profile, 700, 11, False)).exists()

    def test_disabled_store_never_touches_disk(self, tmp_path):
        store = TraceStore(tmp_path / "never", enabled=False)
        store.store("00" * 32, generate_trace(get_profile("gcc"), 200, seed=1))
        assert store.load("00" * 32) is None
        assert not (tmp_path / "never").exists()


class TestWarmPool:
    def test_pool_persists_across_batches_and_closes(self, tmp_path):
        engine = SweepEngine(jobs=2, trace_store_dir=str(tmp_path),
                             allow_oversubscribe=True)
        jobs_a = _ladder_jobs(["gcc"])[:4]
        jobs_b = _ladder_jobs(["gcc"])[4:]
        try:
            first = engine.run_jobs(jobs_a)
            pool = engine._pool
            assert pool is not None
            second = engine.run_jobs(jobs_b)
            assert engine._pool is pool  # warm pool reused, not respawned
        finally:
            engine.close()
        assert engine._pool is None
        engine.close()  # idempotent

        engine_mod._trace_memo.clear()
        serial = SweepEngine(jobs=1).run_jobs(jobs_a + jobs_b)
        combined = {**first, **second}
        assert _fingerprint(combined) == _fingerprint(serial)
