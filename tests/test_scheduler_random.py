"""Randomized, seeded stress tests of the scheduler and simulator invariants.

Coreblocks-style randomized testing: each trial seeds ``random`` explicitly,
drives the unit with a random operation sequence, and asserts structural
invariants rather than exact outputs.  These guard the issue-queue ready-set
bookkeeping and the simulator's out-of-order machinery:

* an entry never issues (selects) before all its source operands are ready;
* select is oldest-first and never exceeds the issue width / memory ports;
* commit retires trace uops strictly in program order;
* copy uops consume real issue slots in their cluster (issue-slot accounting
  covers them).
"""

from __future__ import annotations

import random

from repro.core.config import helper_cluster_config
from repro.core.steering import make_policy
from repro.pipeline.scheduler import IssueQueue, IssueQueueEntry
from repro.sim.simulator import HelperClusterSimulator
from repro.trace.profiles import SPEC_INT_NAMES, get_profile
from repro.trace.synthetic import generate_trace

N_QUEUE_TRIALS = 25
N_SIM_TRIALS = 6


class TestIssueQueueRandomized:
    """Random insert/wakeup/select/flush sequences against a model."""

    def _random_entry(self, uid: int) -> IssueQueueEntry:
        return IssueQueueEntry(
            uid=uid,
            seq=random.randint(0, 40),       # deliberate seq ties
            remaining_sources=random.randint(0, 3),
            fu_latency=random.randint(1, 4),
            is_memory=random.random() < 0.3,
        )

    def test_random_operation_sequences(self):
        random.seed(14)
        for _ in range(N_QUEUE_TRIALS):
            queue = IssueQueue(size=16, issue_width=3)
            live = {}                        # uid -> entry (the model)
            next_uid = 0
            order_of = {}                    # uid -> insertion order
            insert_counter = 0
            for _ in range(200):
                op = random.random()
                if op < 0.45 and not queue.is_full():
                    entry = self._random_entry(next_uid)
                    queue.insert(entry)
                    live[entry.uid] = entry
                    order_of[entry.uid] = insert_counter
                    insert_counter += 1
                    next_uid += 1
                elif op < 0.70 and live:
                    queue.wakeup(random.choice(list(live)))
                elif op < 0.90:
                    memory_slots = random.randint(0, 2)
                    before_ready = sorted(
                        (uid for uid, e in live.items() if e.remaining_sources == 0),
                        key=lambda uid: (live[uid].seq, order_of[uid]))
                    selected = queue.select(memory_slots=memory_slots)
                    # Invariant: every selected entry was ready.
                    assert all(e.remaining_sources == 0 for e in selected)
                    # Invariant: width and memory-port limits hold.
                    assert len(selected) <= queue.issue_width
                    assert sum(e.is_memory for e in selected) <= memory_slots
                    # Invariant: oldest-first among the ready (modulo memory
                    # entries skipped by the port limit).
                    non_memory = [e.uid for e in selected if not e.is_memory]
                    expected_order = [uid for uid in before_ready
                                      if not live[uid].is_memory]
                    assert non_memory == expected_order[:len(non_memory)]
                    for entry in selected:
                        del live[entry.uid]
                else:
                    seq = random.randint(0, 40)
                    squashed = queue.flush_from(seq)
                    assert all(e.seq >= seq for e in squashed)
                    for entry in squashed:
                        del live[entry.uid]
                # Bookkeeping invariants after every operation.
                assert len(queue) == len(live)
                assert queue.ready_count() == sum(
                    1 for e in live.values() if e.remaining_sources == 0)

    def test_drain_returns_everything_in_age_order(self):
        random.seed(7)
        for _ in range(10):
            queue = IssueQueue(size=32, issue_width=3)
            entries = [self._random_entry(uid) for uid in range(20)]
            for entry in entries:
                queue.insert(entry)
            drained = queue.drain()
            assert len(drained) == 20 and len(queue) == 0
            seqs = [e.seq for e in drained]
            assert seqs == sorted(seqs)


class TestSimulatorRandomizedInvariants:
    """Whole-simulator invariants over randomized traces and seeds."""

    def _build_sim(self, trial: int) -> HelperClusterSimulator:
        benchmark = SPEC_INT_NAMES[trial % len(SPEC_INT_NAMES)]
        trace = generate_trace(get_profile(benchmark), 700, seed=1000 + trial)
        return HelperClusterSimulator(trace, config=helper_cluster_config(),
                                      policy=make_policy("ir"))

    def test_commit_is_in_order_and_issue_waits_for_operands(self):
        random.seed(42)
        for trial in range(N_SIM_TRIALS):
            sim = self._build_sim(trial)

            committed_seqs = []
            original_commit = sim.rob.commit

            def commit_spy():
                retired = original_commit()
                committed_seqs.extend(entry.seq for entry in retired)
                return retired

            sim.rob.commit = commit_spy

            for queue in (sim.narrow.issue_queue, sim.wide.issue_queue):
                original_select = queue.select

                def select_spy(*args, _orig=original_select, **kwargs):
                    selected = _orig(*args, **kwargs)
                    # Invariant: nothing issues with outstanding operands.
                    assert all(e.remaining_sources == 0 for e in selected)
                    return selected

                queue.select = select_spy

            result = sim.run()
            # Invariant: in-order retirement.
            assert committed_seqs == sorted(committed_seqs)
            assert result.committed_uops == len(sim.trace)

    def test_copy_uops_consume_issue_slots(self):
        random.seed(42)
        saw_copies = False
        for trial in range(N_SIM_TRIALS):
            sim = self._build_sim(trial)
            result = sim.run()
            narrow, wide = sim.narrow.stats, sim.wide.stats
            copies = narrow.copies_executed + wide.copies_executed
            saw_copies = saw_copies or copies > 0
            # Issue-slot accounting covers copies: total issues include them
            # and never exceed each cluster's issue opportunities.
            assert narrow.issued >= narrow.copies_executed
            assert wide.issued >= wide.copies_executed
            width = sim.config.scheduler.issue_width
            assert narrow.issued <= (result.fast_cycles + 1) * width
            wide_cycles = result.fast_cycles // sim.clocking.ratio + 1
            assert wide.issued <= wide_cycles * width
            # Copy traffic is visible in the run metrics as well.
            assert result.copies >= copies - result.squashed_uops
        assert saw_copies, "no trial exercised inter-cluster copies"
