"""Tests for :mod:`repro.fuzz.enginefaults` — chaos fuzzing of the engine."""

from repro.fuzz import load_corpus_dir
from repro.fuzz.enginefaults import (
    EngineFaultCase,
    engine_case_from_dict,
    engine_case_to_dict,
    generate_engine_case,
    load_engine_corpus_dir,
    run_engine_fault_case,
    write_engine_corpus_entry,
)


class TestCaseGeneration:
    def test_generation_is_deterministic(self):
        assert generate_engine_case(42) == generate_engine_case(42)
        assert generate_engine_case(42) != generate_engine_case(43)

    def test_cases_round_trip_through_dicts(self):
        for seed in range(10):
            case = generate_engine_case(seed)
            assert engine_case_from_dict(engine_case_to_dict(case)) == case
            case.plan()  # the spec text must parse

    def test_plans_carry_fast_supervision_overrides(self):
        plan = generate_engine_case(7).plan()
        assert plan.deadline is not None
        assert plan.backoff is not None


class TestCorpus:
    def test_engine_entries_round_trip_and_stay_typed(self, tmp_path):
        case = generate_engine_case(5)
        write_engine_corpus_entry(case, tmp_path, "engine-fault-5", "why")
        (name, loaded), = load_engine_corpus_dir(tmp_path)
        assert name == "engine-fault-5"
        assert loaded == case
        # The differential loader must skip typed entries, not crash.
        assert load_corpus_dir(tmp_path) == []


class TestCaseExecution:
    def test_serial_chaos_case_passes(self):
        case = EngineFaultCase(
            case_seed=1, benchmarks=("gcc",), policies=("ir",),
            trace_uops=300, sweep_seed=9, jobs=1,
            plan_text=("seed=6,crash=0.3,transient=0.3,corrupt_result=0.5,"
                       "deadline=10,backoff=0.01"))
        report = run_engine_fault_case(case)
        assert report.ok, report.failures
        assert report.survivors == 2  # baseline + ir
        assert report.quarantined == 0

    def test_sticky_quarantine_is_a_legitimate_outcome(self):
        case = EngineFaultCase(
            case_seed=2, benchmarks=("gcc",), policies=("ir",),
            trace_uops=300, sweep_seed=9, jobs=1,
            plan_text="seed=6,sticky=crash@gcc:ir,deadline=10,backoff=0.01")
        report = run_engine_fault_case(case)
        assert report.ok, report.failures
        assert report.survivors == 1
        assert report.quarantined == 1
