"""Tests for the cluster-targeted steering API and the policy registry.

Covers the PR's API-redesign surface:

* **Registry** — ``PolicySpec`` records, registration, registry-driven
  ``make_policy`` with ad-hoc ``"+"`` scheme combos, and the ``KeyError``
  contract (message lists known policies *and* known schemes).
* **Cache keys** — ``PolicySpec.to_key_dict()`` reaches the engine's result
  key, so policies differing only in selector or knobs never alias.
* **Selectors** — the default least-loaded selector reproduces the original
  helper resolution; the width-aware selector routes by requirement width
  (9-16-bit work to a 16-bit helper, never to an 8-bit one) and degenerates
  to the default behaviour on the paper's single-helper machine.
* **Deprecated shim** — ``with_helper()`` warns, and the derived topology is
  identical to ``helper_topology()``.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.cluster import Backend
from repro.core.config import (
    MachineConfig,
    HelperClusterConfig,
    helper_cluster_config,
    helper_topology,
    mixed_helper_topology,
    topology_config,
)
from repro.core.selection import (
    SELECTORS,
    ClusterRequirement,
    LeastLoadedSelector,
    WidthAwareSelector,
    make_selector,
)
from repro.core.steering import (
    BaselineSteering,
    DataWidthSteering,
    PolicyRegistry,
    PolicySpec,
    Scheme,
    make_policy,
    parse_scheme_combo,
    policy_registry,
    policy_spec,
)
from repro.isa.opcodes import Opcode
from repro.pipeline.clocking import ClockingModel
from repro.sim.cache import canonical_text
from repro.sim.engine import SweepEngine, SweepJob
from repro.sim.experiment import ExperimentRunner, mixed_topology_point
from repro.sim.simulator import HelperClusterSimulator, simulate
from repro.trace.profiles import get_profile
from repro.trace.synthetic import generate_trace


# ---------------------------------------------------------------------------
# PolicySpec and the registry
# ---------------------------------------------------------------------------
class TestPolicyRegistry:
    def test_default_registry_contains_ladder_and_width_aware(self):
        names = policy_registry.names()
        assert names[0] == "baseline"
        for name in ("n888", "ir", "ir_nodest", "ir_wa", "n888_wa"):
            assert name in policy_registry, name
        # Ladder ordering is preserved and excludes the width-aware extras.
        ladder = policy_registry.ladder_names(include_baseline=False)
        assert ladder[0] == "n888" and ladder[-1] == "ir_nodest"
        assert "ir_wa" not in ladder
        assert "ir_wa" in policy_registry.helper_names()
        assert "baseline" not in policy_registry.helper_names()

    def test_registered_policy_buildable_without_cli_changes(self):
        registry = PolicyRegistry()
        spec = registry.register(PolicySpec(
            name="custom", schemes=frozenset({Scheme.N888, Scheme.LR}),
            selector="width_aware", knobs={"width_margin": 2}))
        policy = make_policy("custom", registry=registry)
        assert isinstance(policy, DataWidthSteering)
        assert policy.name == "custom"
        assert policy.schemes == {Scheme.N888, Scheme.LR}
        assert isinstance(policy.selector, WidthAwareSelector)
        assert policy.selector.width_margin == 2
        assert spec.to_key_dict()["knobs"] == {"width_margin": 2}

    def test_duplicate_registration_requires_replace(self):
        registry = PolicyRegistry()
        registry.register(PolicySpec(name="p", schemes=frozenset({Scheme.N888})))
        with pytest.raises(ValueError, match="already registered"):
            registry.register(PolicySpec(name="p", schemes=frozenset({Scheme.CR})))
        registry.register(PolicySpec(name="p", schemes=frozenset({Scheme.CR})),
                          replace=True)
        assert registry.get("p").schemes == {Scheme.CR}

    def test_baseline_spec_builds_baseline_policy(self):
        policy = make_policy("baseline")
        assert isinstance(policy, BaselineSteering)
        assert isinstance(policy.selector, LeastLoadedSelector)

    def test_unknown_policy_error_lists_names_and_schemes(self):
        with pytest.raises(KeyError) as excinfo:
            make_policy("bogus")
        message = str(excinfo.value)
        assert "ir_nodest" in message and "baseline" in message
        for token in ("n888", "br", "lr", "cr", "cp", "ir"):
            assert token in message, token

    def test_unknown_selector_raises(self):
        with pytest.raises(KeyError, match="unknown cluster selector"):
            make_selector("bogus")
        assert set(SELECTORS) >= {"least_loaded", "width_aware"}


class TestAdHocSchemeCombos:
    def test_parse_scheme_combo(self):
        assert parse_scheme_combo("n888+cr") == {Scheme.N888, Scheme.CR}
        assert parse_scheme_combo("N888 + IR_NODEST") == {Scheme.N888,
                                                          Scheme.IR_NODEST}
        assert parse_scheme_combo("n888+bogus") is None

    def test_make_policy_accepts_ad_hoc_combo(self):
        policy = make_policy("n888+cr")
        assert isinstance(policy, DataWidthSteering)
        assert policy.schemes == {Scheme.N888, Scheme.CR}
        assert policy.name == "n888+cr"

    def test_ad_hoc_combo_with_unknown_token_raises_listing_both(self):
        with pytest.raises(KeyError) as excinfo:
            make_policy("n888+bogus")
        message = str(excinfo.value)
        assert "known policies" in message and "known schemes" in message

    def test_ad_hoc_combo_simulates(self, tiny_trace):
        result = simulate(tiny_trace, config=helper_cluster_config(),
                          policy=make_policy("n888+cr"))
        assert result.policy == "n888+cr"
        assert result.committed_uops == len(tiny_trace)


# ---------------------------------------------------------------------------
# Cache-key contract: PolicySpec feeds the result key
# ---------------------------------------------------------------------------
class TestPolicySpecCacheKey:
    def test_key_dict_distinguishes_selector_and_knobs(self):
        base = PolicySpec(name="p", schemes=frozenset({Scheme.N888}))
        by_selector = replace(base, selector="width_aware")
        by_knobs = replace(by_selector, knobs=(("width_margin", 1),))
        keys = {canonical_text(spec.to_key_dict())
                for spec in (base, by_selector, by_knobs)}
        assert len(keys) == 3

    def test_engine_keys_never_alias_selector_variants(self):
        engine = SweepEngine(config=helper_cluster_config())
        ir = engine.key_for(SweepJob("gcc", "ir", 1000, 2006))
        ir_wa = engine.key_for(SweepJob("gcc", "ir_wa", 1000, 2006))
        ad_hoc = engine.key_for(SweepJob("gcc", "n888+cr", 1000, 2006))
        assert len({ir, ir_wa, ad_hoc}) == 3

    def test_execute_job_uses_shipped_spec_over_registry(self):
        """Pool workers receive the resolved PolicySpec in the task, so
        runtime-registered policies survive spawn-based multiprocessing
        (where the child's registry only holds the built-ins)."""
        from repro.sim.engine import execute_job

        spec = PolicySpec(name="unregistered_custom",
                          schemes=frozenset({Scheme.N888}))
        job = SweepJob("gcc", "unregistered_custom", 1200, 2006)
        with pytest.raises(KeyError):
            execute_job(job, helper_cluster_config())  # name alone: unknown
        result = execute_job(job, helper_cluster_config(), spec=spec)
        assert result.policy == "unregistered_custom"

    def test_engine_runs_ad_hoc_policy_and_caches_it(self, tmp_path):
        from repro.sim.cache import ResultCache

        cache = ResultCache(tmp_path / "cache")
        engine = SweepEngine(config=helper_cluster_config(), cache=cache)
        job = SweepJob("gcc", "n888+cr", 1200, 2006)
        first = engine.run_jobs([job])[job]
        assert first.policy == "n888+cr"
        assert cache.stores == 1
        again = engine.run_jobs([job])[job]
        assert cache.hits == 1
        assert again == first


# ---------------------------------------------------------------------------
# Selector unit behaviour
# ---------------------------------------------------------------------------
def _bind_selector(selector, topology):
    config = topology_config(topology)
    clocking = ClockingModel.from_ratios([spec.clock_ratio for spec in topology])
    backends = [Backend(spec, config, clocking, index=i)
                for i, spec in enumerate(topology)]
    selector.bind(topology, backends)
    return backends


class TestWidthAwareSelector:
    def _mixed(self):
        return mixed_helper_topology([(8, 2), (16, 1)])

    def test_steering_width_is_widest_helper(self):
        selector = WidthAwareSelector()
        topology = self._mixed()
        assert selector.steering_width(topology_config(topology), topology) == 16
        default = LeastLoadedSelector()
        assert default.steering_width(topology_config(topology), topology) == 8

    def test_halfword_requirements_only_reach_sixteen_bit_helper(self):
        selector = WidthAwareSelector()
        _bind_selector(selector, self._mixed())
        for bits in range(9, 17):
            chosen = selector.select(ClusterRequirement(min_width=bits))
            assert chosen == 2, f"{bits}-bit requirement routed to cluster {chosen}"
        assert all(cluster == 2 for (_, cluster) in selector.routed)

    def test_byte_requirements_prefer_fast_narrow_helper(self):
        selector = WidthAwareSelector()
        _bind_selector(selector, self._mixed())
        assert selector.select(ClusterRequirement(min_width=8)) == 1
        assert selector.select(ClusterRequirement(min_width=1)) == 1

    def test_byte_work_spills_when_narrow_helper_full(self):
        selector = WidthAwareSelector()
        backends = _bind_selector(selector, self._mixed())
        n8 = backends[1]
        while n8.issue_queue.free_slots:
            from repro.pipeline.scheduler import IssueQueueEntry
            n8.issue_queue.insert(IssueQueueEntry(
                uid=1000 + n8.issue_queue.free_slots, seq=0,
                remaining_sources=1, fu_latency=1))
        assert selector.select(ClusterRequirement(min_width=8)) == 2

    def test_unsatisfiable_requirement_returns_none(self):
        selector = WidthAwareSelector()
        _bind_selector(selector, self._mixed())
        assert selector.select(ClusterRequirement(min_width=17)) is None
        assert selector.select(ClusterRequirement(min_width=8,
                                                  needs_fp=True)) is None

    def test_width_margin_knob_tightens_fit(self):
        selector = WidthAwareSelector(width_margin=4)
        _bind_selector(selector, self._mixed())
        # 8-bit requirement + 4 bits of margin no longer fits the 8-bit helper.
        assert selector.select(ClusterRequirement(min_width=8)) == 2

    def test_reset_clears_routing_stats(self):
        selector = WidthAwareSelector()
        _bind_selector(selector, self._mixed())
        selector.select(ClusterRequirement(min_width=12))
        assert selector.routed
        selector.reset()
        assert not selector.routed


class TestResolve:
    def test_explicit_target_honoured_when_capable(self):
        from repro.core.steering import SteerDecision
        from repro.pipeline.clocking import ClockDomain

        selector = LeastLoadedSelector()
        _bind_selector(selector, mixed_helper_topology([(8, 2), (16, 1)]))
        decision = SteerDecision(domain=ClockDomain.NARROW, target_cluster=2)
        assert selector.resolve(decision, Opcode.ADD) == 2

    def test_target_violating_requirement_is_rerouted(self):
        from repro.core.steering import SteerDecision
        from repro.pipeline.clocking import ClockDomain

        selector = WidthAwareSelector()
        _bind_selector(selector, mixed_helper_topology([(8, 2), (16, 1)]))
        # Cluster 1 is the 8-bit helper: a 16-bit requirement must override
        # the explicit target rather than invite a fatal width flush.
        decision = SteerDecision(
            domain=ClockDomain.NARROW, target_cluster=1,
            requirement=ClusterRequirement(min_width=16))
        assert selector.resolve(decision, Opcode.ADD) == 2

    def test_wide_decision_resolves_to_host(self):
        from repro.core.steering import SteerDecision
        from repro.pipeline.clocking import ClockDomain

        selector = LeastLoadedSelector()
        _bind_selector(selector, helper_topology())
        decision = SteerDecision(domain=ClockDomain.WIDE)
        assert selector.resolve(decision, Opcode.ADD) == 0


class TestLeastLoadedSelector:
    def test_single_helper_shortcut(self):
        selector = LeastLoadedSelector()
        _bind_selector(selector, helper_topology())
        assert selector.select() == 1
        assert selector.select(opcode=Opcode.ADD) == 1

    def test_least_loaded_wins_lowest_index_on_ties(self):
        selector = LeastLoadedSelector()
        backends = _bind_selector(selector, helper_topology(helpers=2))
        assert selector.select() == 1  # tie -> lowest index
        from repro.pipeline.scheduler import IssueQueueEntry
        backends[1].issue_queue.insert(IssueQueueEntry(
            uid=1, seq=0, remaining_sources=1, fu_latency=1))
        assert selector.select() == 2  # helper 2 now has more free slots


# ---------------------------------------------------------------------------
# Width-aware steering end to end
# ---------------------------------------------------------------------------
class TestWidthAwareSteering:
    def test_width_aware_degenerates_on_paper_machine(self, tiny_trace):
        """ir_wa == ir bit-identically on the single-helper design point.

        Only the self-describing labels (policy name, recorded selector) may
        differ; every timing, steering and energy metric must be identical.
        """
        r_ir = simulate(tiny_trace, config=helper_cluster_config(),
                        policy=make_policy("ir"))
        r_wa = simulate(tiny_trace, config=helper_cluster_config(),
                        policy=make_policy("ir_wa"))
        assert r_wa.selector == "width_aware" and r_ir.selector == "least_loaded"
        assert replace(r_wa, policy="ir", selector=r_ir.selector) == r_ir

    @pytest.fixture(scope="class")
    def halfword_trace(self):
        return generate_trace(get_profile("gcc").scaled(data_width=16),
                              4000, seed=3)

    def test_halfword_uops_land_on_sixteen_bit_helper_only(self, halfword_trace):
        config = topology_config(mixed_helper_topology([(8, 2), (16, 1)]))
        sim = HelperClusterSimulator(halfword_trace, config=config,
                                     policy=make_policy("ir_wa"))
        result = sim.run()
        assert result.committed_uops == len(halfword_trace)
        mid_routes = {(bits, cluster): count
                      for (bits, cluster), count in sim.selector.routed.items()
                      if 9 <= bits <= 16}
        assert mid_routes, "expected 9-16-bit steering requirements"
        assert all(cluster == 2 for (_, cluster) in mid_routes), (
            f"9-16-bit uops reached the 8-bit helper: {mid_routes}")
        # The 16-bit helper actually executed work.
        assert result.cluster_occupancy["n16x1"] > 0.0

    def test_width_aware_beats_default_selector_on_asymmetric_explore(
            self, halfword_trace):
        """Acceptance: strictly higher helper-steered fraction in the
        explore sensitivity table on the 8-bit@2x + 16-bit@1x machine."""
        point = mixed_topology_point([(8, 2), (16, 1)])
        profile = get_profile("gcc").scaled(data_width=16)
        runner = ExperimentRunner(trace_uops=2000, seed=2006)
        default_sweep = runner.run_topology_grid([point], [profile], policy="ir")
        wa_sweep = runner.run_topology_grid([point], [profile], policy="ir_wa")
        assert wa_sweep.mean_helper_fraction(point.name) > \
            default_sweep.mean_helper_fraction(point.name)

    def test_width_aware_simulation_is_deterministic(self, halfword_trace):
        config = topology_config(mixed_helper_topology([(8, 2), (16, 1)]))
        first = simulate(halfword_trace, config=config, policy=make_policy("ir_wa"))
        second = simulate(halfword_trace, config=config, policy=make_policy("ir_wa"))
        assert first == second


# ---------------------------------------------------------------------------
# Deprecated two-cluster shim
# ---------------------------------------------------------------------------
class TestDeprecatedHelperShim:
    def test_with_helper_warns_and_matches_helper_topology(self):
        config = helper_cluster_config()
        with pytest.warns(DeprecationWarning, match="with_helper"):
            shimmed = config.with_helper(narrow_width=16, clock_ratio=4)
        assert shimmed.cluster_topology() == helper_topology(narrow_width=16,
                                                             clock_ratio=4)

    def test_helper_cluster_config_shim_derives_paper_topology(self):
        config = MachineConfig(helper=HelperClusterConfig(enabled=True))
        assert config.cluster_topology() == helper_topology()
