"""Shared fixtures for the test suite.

Simulation tests use deliberately small traces (a few thousand uops) so the
whole suite stays CI-fast; the statistical assertions are therefore loose
bounds, not exact matches.
"""

from __future__ import annotations

import pytest

from repro.core.config import baseline_config, helper_cluster_config
from repro.trace.profiles import get_profile
from repro.trace.synthetic import generate_trace


@pytest.fixture(scope="session")
def gcc_trace_small():
    """A small, deterministic gcc-profile trace shared across tests."""
    return generate_trace(get_profile("gcc"), 3000, seed=7)


@pytest.fixture(scope="session")
def bzip2_trace_small():
    """A small, deterministic bzip2-profile trace shared across tests."""
    return generate_trace(get_profile("bzip2"), 3000, seed=7)


@pytest.fixture(scope="session")
def tiny_trace():
    """A very small trace for expensive per-test simulations."""
    return generate_trace(get_profile("gzip"), 1200, seed=11)


@pytest.fixture()
def helper_config():
    return helper_cluster_config()


@pytest.fixture()
def mono_config():
    return baseline_config()
