"""Tests for the width / carry / copy-prefetch predictors (§3.2, §3.5, §3.6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.predictors import (
    CarryPredictor,
    ConfidenceCounter,
    CopyPrefetchPredictor,
    WidthPredictor,
)


class TestConfidenceCounter:
    def test_saturates_high(self):
        counter = ConfidenceCounter()
        for _ in range(10):
            counter.increment()
        assert counter.value == 3

    def test_saturates_low(self):
        counter = ConfidenceCounter(initial=1)
        counter.decrement()
        counter.decrement()
        assert counter.value == 0

    def test_reset(self):
        counter = ConfidenceCounter(initial=3)
        counter.reset()
        assert counter.value == 0

    def test_confidence_threshold(self):
        counter = ConfidenceCounter()
        assert not counter.is_confident()
        counter.increment()
        counter.increment()
        assert counter.is_confident()

    def test_invalid_initial(self):
        with pytest.raises(ValueError):
            ConfidenceCounter(initial=9)


class TestWidthPredictor:
    def test_table_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            WidthPredictor(entries=100)
        WidthPredictor(entries=256)

    def test_defaults_predict_narrow_unconfidently(self):
        predictor = WidthPredictor()
        prediction = predictor.predict(0x400100)
        assert prediction.narrow
        assert not prediction.confident

    def test_learns_last_width(self):
        predictor = WidthPredictor()
        pc = 0x400104
        predictor.update(pc, actual_narrow=False)
        assert not predictor.predict(pc).narrow
        predictor.update(pc, actual_narrow=True)
        assert predictor.predict(pc).narrow

    def test_confidence_builds_with_repetition(self):
        predictor = WidthPredictor()
        pc = 0x400108
        predictor.update(pc, True)
        predictor.update(pc, True)
        predictor.update(pc, True)
        assert predictor.predict(pc).confident

    def test_confidence_resets_on_misprediction(self):
        predictor = WidthPredictor()
        pc = 0x40010C
        for _ in range(4):
            predictor.update(pc, True)
        predictor.update(pc, False)
        assert not predictor.predict(pc).confident

    def test_confidence_gate_can_be_disabled(self):
        predictor = WidthPredictor(use_confidence=False)
        assert predictor.predict(0x1000).confident

    def test_accuracy_statistics(self):
        predictor = WidthPredictor()
        pc = 0x400200
        predictor.update(pc, True)      # predicted narrow (default) -> correct
        predictor.update(pc, False)     # predicted narrow -> incorrect
        assert predictor.stats.correct == 1
        assert predictor.stats.incorrect == 1
        assert predictor.stats.accuracy == 0.5

    def test_aliasing_uses_low_index_bits(self):
        predictor = WidthPredictor(entries=256)
        pc_a = 0x400000
        pc_b = pc_a + 256 * 4   # same index after >>2 and mask
        predictor.update(pc_a, False)
        assert not predictor.predict(pc_b).narrow

    def test_reset(self):
        predictor = WidthPredictor()
        predictor.update(0x10, False)
        predictor.reset()
        assert predictor.predict(0x10).narrow
        assert predictor.stats.updates == 0

    def test_high_locality_stream_reaches_paper_accuracy(self):
        """A 94%-stable width stream should be predicted with ~>=90% accuracy,
        the regime the paper reports (93.5%)."""
        import random
        rng = random.Random(1)
        predictor = WidthPredictor()
        pcs = [0x400000 + 4 * i for i in range(64)]
        stable_width = {pc: rng.random() < 0.6 for pc in pcs}
        for _ in range(200):
            for pc in pcs:
                actual = stable_width[pc] if rng.random() < 0.94 else not stable_width[pc]
                predictor.update(pc, actual)
        assert predictor.stats.accuracy >= 0.85

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=2**20),
                              st.booleans()), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_update_counts_consistent(self, updates):
        predictor = WidthPredictor()
        for pc, narrow in updates:
            predictor.update(pc, narrow)
        assert predictor.stats.correct + predictor.stats.incorrect == len(updates)


class TestCarryPredictor:
    def test_view_shares_table(self):
        width = WidthPredictor()
        carry = CarryPredictor(width)
        pc = 0x400300
        for _ in range(4):
            carry.update(pc, operated_narrow=True)
        assert carry.predict_carry_safe(pc)

    def test_requires_saturated_confidence(self):
        width = WidthPredictor()
        carry = CarryPredictor(width)
        pc = 0x400304
        carry.update(pc, True)
        # one update is not enough to saturate the (stricter) carry confidence
        assert not carry.predict_carry_safe(pc)

    def test_flips_on_carry_propagation(self):
        width = WidthPredictor()
        carry = CarryPredictor(width)
        pc = 0x400308
        for _ in range(4):
            carry.update(pc, True)
        carry.update(pc, False)
        assert not carry.predict_carry_safe(pc)

    def test_stats_exposed(self):
        width = WidthPredictor()
        carry = CarryPredictor(width)
        carry.update(0x1, True)
        assert carry.stats.updates == 1


class TestCopyPrefetchPredictor:
    def test_last_value_behaviour(self):
        width = WidthPredictor()
        cp = CopyPrefetchPredictor(width)
        pc = 0x400400
        assert not cp.predict_will_copy(pc)
        cp.update(pc, incurred_copy=True)
        assert cp.predict_will_copy(pc)
        cp.update(pc, incurred_copy=False)
        assert not cp.predict_will_copy(pc)

    def test_accuracy_tracking(self):
        width = WidthPredictor()
        cp = CopyPrefetchPredictor(width)
        pc = 0x400404
        cp.update(pc, True)    # predicted False (default) -> wrong
        cp.update(pc, True)    # predicted True -> right
        assert cp.stats.updates == 2
        assert cp.stats.correct == 1

    def test_independent_of_width_bit(self):
        width = WidthPredictor()
        cp = CopyPrefetchPredictor(width)
        pc = 0x400408
        width.update(pc, actual_narrow=False)
        cp.update(pc, incurred_copy=True)
        assert cp.predict_will_copy(pc)
        assert not width.predict(pc).narrow
