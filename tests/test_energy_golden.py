"""Golden pins for the per-cluster energy model.

Two protection layers, mirroring the timing golden ladder:

* **Legacy equivalence** — on the paper's machines (monolithic baseline and
  the wide + 8-bit@2x pair) the per-cluster evaluation must reproduce the
  original two-cluster :meth:`PowerModel.evaluate` *exactly*, per structure
  and in total.  This is what anchored the switch to per-cluster accounting:
  the refactor changed the bookkeeping, not the physics.
* **ED² pins** — the paper design point's ED² ratio against the monolithic
  baseline is pinned to 6 decimal places for the mini-ladder conditions
  (2500-uop traces, seed 2006).  The simulator and the power model are both
  deterministic, so any drift is a semantic change: update the pins, the
  artefacts, and bump :data:`repro.sim.cache.SIMULATOR_VERSION` if timing
  moved too.
"""

from __future__ import annotations

import pytest

from repro.core.config import baseline_config, helper_cluster_config
from repro.core.steering import make_policy
from repro.power.wattch import PowerModel
from repro.sim.experiment import run_spec_suite
from repro.sim.simulator import simulate

#: ED² ratio (ir / baseline) per benchmark at 2500-uop traces, seed 2006 —
#: the paper design point (wide + 8-bit@2x helper, IR policy).
ED2_RATIO_PINS = {
    "gcc": 0.869397,
    "bzip2": 0.779485,
    "parser": 0.727825,
}

#: Mean ED² improvement of the same mini sweep (fraction, 6 decimals).
MEAN_ED2_GAIN_PIN = 0.207764


@pytest.fixture(scope="module")
def mini_energy_sweep():
    return run_spec_suite(["ir"], trace_uops=2500, seed=2006,
                          benchmarks=list(ED2_RATIO_PINS))


class TestLegacyEquivalence:
    """Per-cluster evaluation == original two-cluster model on the paper pair."""

    @pytest.fixture(scope="class")
    def runs(self, gcc_trace_small):
        return {
            "baseline": simulate(gcc_trace_small, config=baseline_config(),
                                 policy=make_policy("baseline")),
            "pair": simulate(gcc_trace_small, config=helper_cluster_config(),
                             policy=make_policy("ir")),
        }

    @pytest.mark.parametrize("label", ["baseline", "pair"])
    def test_total_energy_matches_legacy_model_exactly(self, runs, label):
        result = runs[label]
        legacy = PowerModel().evaluate(result.activity)
        assert result.energy == legacy.total

    def test_structure_mapping_exact(self, runs):
        result = runs["pair"]
        legacy = PowerModel().evaluate(result.activity).per_structure
        wide, narrow = result.power["wide"], result.power["narrow"]
        shared = result.shared_power.per_structure
        assert wide.per_structure["execute"] == legacy["wide_execute"]
        assert wide.per_structure["regfile"] == legacy["wide_regfile"]
        assert wide.per_structure["scheduler"] == legacy["wide_scheduler"]
        assert wide.per_structure["clock"] == legacy["wide_clock"]
        assert narrow.per_structure["execute"] == legacy["narrow_execute"]
        assert narrow.per_structure["regfile"] == legacy["narrow_regfile"]
        assert narrow.per_structure["scheduler"] == legacy["narrow_scheduler"]
        assert narrow.per_structure["clock"] == legacy["narrow_clock"]
        for key in ("frontend", "rename", "rob", "dl0", "ul1", "memory",
                    "predictors", "copies"):
            assert shared[key] == legacy[key]

    def test_baseline_has_no_helper_cluster_energy(self, runs):
        result = runs["baseline"]
        assert set(result.power) == {"wide"}
        assert result.activity.helper_present is False


class TestEnergyGoldenPins:
    def test_ed2_ratio_pinned(self, mini_energy_sweep):
        for benchmark, expected in ED2_RATIO_PINS.items():
            bench = mini_energy_sweep.results[benchmark]
            ratio = bench.by_policy["ir"].ed2 / bench.baseline.ed2
            assert ratio == pytest.approx(expected, abs=5e-7), (
                f"{benchmark} ED2 ratio drifted: {ratio:.6f} != {expected:.6f} "
                f"— if intentional, update the pin (and bump "
                f"SIMULATOR_VERSION if timing moved)")

    def test_mean_ed2_gain_pinned(self, mini_energy_sweep):
        gain = mini_energy_sweep.mean_ed2_improvement("ir")
        assert gain == pytest.approx(MEAN_ED2_GAIN_PIN, abs=5e-7)

    def test_gain_direction_matches_paper(self, mini_energy_sweep):
        """The helper design point is more ED²-efficient than the baseline
        (the paper's +5.1% headline claim, at synthetic-trace scale)."""
        assert mini_energy_sweep.mean_ed2_improvement("ir") > 0

    def test_parallel_engine_matches_serial_energy(self, mini_energy_sweep):
        parallel = run_spec_suite(["ir"], trace_uops=2500, seed=2006,
                                  benchmarks=list(ED2_RATIO_PINS), jobs=2,
                                  allow_oversubscribe=True)
        for benchmark in ED2_RATIO_PINS:
            serial_result = mini_energy_sweep.results[benchmark].by_policy["ir"]
            parallel_result = parallel.results[benchmark].by_policy["ir"]
            assert parallel_result.energy == serial_result.energy
            assert parallel_result.ed2 == serial_result.ed2
            assert parallel_result.power.keys() == serial_result.power.keys()
