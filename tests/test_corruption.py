"""Crash-consistency tests for the on-disk stores.

Both content-addressed stores (:class:`repro.sim.cache.ResultCache`,
:class:`repro.trace.store.TraceStore`) promise that *any* on-disk damage —
truncation, garbling, or the debris of a process killed mid-write — is
treated as a cache miss, never an error and never a wrong answer.  These
tests exercise that promise directly against the store APIs (the engine-level
paths are covered in ``test_engine.py`` / ``test_trace_store.py``), plus the
regression pin for the ``TraceStore.store`` temp-file leak: a serialization
failure between ``mkstemp`` and ``os.replace`` used to strand a ``.tmp``
file next to the entry forever.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.sim.cache import ResultCache
from repro.sim.metrics import SimulationResult
from repro.trace.profiles import get_profile
from repro.trace.store import TraceStore, trace_key
from repro.trace.synthetic import generate_trace

KEY = "ab" * 32  # a well-formed SHA-256 hex digest


@pytest.fixture
def trace():
    return generate_trace(get_profile("gzip"), 300, seed=7)


@pytest.fixture
def result():
    return SimulationResult(benchmark="gzip", policy="ir", committed_uops=300)


# ---------------------------------------------------------------------------
# mid-write crash debris (stray .tmp files)
# ---------------------------------------------------------------------------
class TestStrayTmpFiles:
    def test_trace_store_ignores_stray_tmp_next_to_entry(self, tmp_path, trace):
        store = TraceStore(tmp_path)
        store.store(KEY, trace)
        # A writer killed between mkstemp and os.replace leaves exactly this.
        stray = store.path_for(KEY).parent / "crashedwriter.tmp"
        stray.write_bytes(b"\x00partial write\x00")
        assert pickle.dumps(store.load(KEY)) == pickle.dumps(trace)
        assert store.corrupt_drops == 0
        # The debris is inert: it is never loaded and never blocks a rewrite.
        store.store(KEY, trace)
        assert pickle.dumps(store.load(KEY)) == pickle.dumps(trace)

    def test_result_cache_ignores_stray_tmp_next_to_entry(self, tmp_path,
                                                          result):
        cache = ResultCache(tmp_path)
        cache.store(KEY, result)
        entry = cache.path_for(KEY)
        (entry.parent / "crashedwriter.tmp").write_bytes(b"\x00partial\x00")
        loaded = cache.load(KEY)
        assert loaded is not None
        assert pickle.dumps(loaded) == pickle.dumps(result)

    def test_tmp_suffix_entry_never_shadows_the_real_key(self, tmp_path,
                                                         trace):
        store = TraceStore(tmp_path)
        # A crash can also leave the *entry path itself* half-written when
        # os.replace never ran: simulate by writing junk at the final path.
        path = store.path_for(KEY)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a trace file")
        assert store.load(KEY) is None
        assert store.corrupt_drops == 1
        assert not path.exists(), "the corrupt slot must be reclaimed"
        store.store(KEY, trace)
        assert pickle.dumps(store.load(KEY)) == pickle.dumps(trace)


# ---------------------------------------------------------------------------
# truncated / garbled entries
# ---------------------------------------------------------------------------
class TestDamagedEntries:
    def test_truncated_trace_entry_is_a_miss(self, tmp_path, trace):
        store = TraceStore(tmp_path)
        store.store(KEY, trace)
        path = store.path_for(KEY)
        path.write_bytes(path.read_bytes()[:-20])
        assert store.load(KEY) is None
        assert store.misses == 1 and store.corrupt_drops == 1

    def test_garbled_trace_payload_fails_the_digest(self, tmp_path, trace):
        store = TraceStore(tmp_path)
        store.store(KEY, trace)
        path = store.path_for(KEY)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        assert store.load(KEY) is None
        assert store.corrupt_drops == 1

    def test_truncated_result_entry_is_a_miss(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        cache.store(KEY, result)
        path = cache.path_for(KEY)
        path.write_bytes(path.read_bytes()[:-20])
        fresh = ResultCache(tmp_path)  # bypass the in-process memo
        assert fresh.load(KEY) is None

    def test_garbled_result_payload_fails_the_digest(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        cache.store(KEY, result)
        path = cache.path_for(KEY)
        data = bytearray(path.read_bytes())
        data[-10] ^= 0xFF
        path.write_bytes(bytes(data))
        fresh = ResultCache(tmp_path)
        assert fresh.load(KEY) is None


# ---------------------------------------------------------------------------
# regression: TraceStore.store must never strand its temp file
# ---------------------------------------------------------------------------
class TestStoreTmpLeak:
    def _tmp_files(self, tmp_path):
        return [p for p in tmp_path.rglob("*.tmp")]

    def test_failed_serialization_cleans_up_the_temp_file(self, tmp_path,
                                                          trace, monkeypatch):
        store = TraceStore(tmp_path)

        def explode(trace_obj, path):
            raise ValueError("simulated mid-dump failure")

        monkeypatch.setattr("repro.trace.store.save_trace_binary", explode)
        with pytest.raises(ValueError, match="mid-dump"):
            store.store(KEY, trace)
        assert self._tmp_files(tmp_path) == [], "temp file leaked"
        assert store.stores == 0
        assert not store.path_for(KEY).exists()

    def test_oserror_during_dump_is_swallowed_without_leaking(self, tmp_path,
                                                              trace,
                                                              monkeypatch):
        store = TraceStore(tmp_path)

        def explode(trace_obj, path):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr("repro.trace.store.save_trace_binary", explode)
        store.store(KEY, trace)  # best-effort: must not raise
        assert self._tmp_files(tmp_path) == [], "temp file leaked"
        assert store.stores == 0

    def test_successful_store_leaves_no_temp_file(self, tmp_path, trace):
        store = TraceStore(tmp_path)
        store.store(KEY, trace)
        assert self._tmp_files(tmp_path) == []
        assert store.stores == 1

    def test_store_recovers_after_a_failed_attempt(self, tmp_path, trace,
                                                   monkeypatch):
        store = TraceStore(tmp_path)
        real = __import__("repro.trace.serialization",
                          fromlist=["save_trace_binary"]).save_trace_binary
        calls = {"n": 0}

        def flaky(trace_obj, path):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("first attempt dies")
            real(trace_obj, path)

        monkeypatch.setattr("repro.trace.store.save_trace_binary", flaky)
        with pytest.raises(ValueError):
            store.store(KEY, trace)
        store.store(KEY, trace)
        assert pickle.dumps(store.load(KEY)) == pickle.dumps(trace)
        assert self._tmp_files(tmp_path) == []


# ---------------------------------------------------------------------------
# os.replace leaves either the old or the new entry, never a hybrid
# ---------------------------------------------------------------------------
def test_rewrite_of_an_existing_entry_is_atomic(tmp_path, trace):
    store = TraceStore(tmp_path)
    store.store(KEY, trace)
    before = store.path_for(KEY).read_bytes()
    store.store(KEY, trace)
    assert store.path_for(KEY).read_bytes() == before
    assert store.load(KEY) is not None
