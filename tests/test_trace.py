"""Tests for the trace container, profiles, slicing and the workload suite."""

import pytest

from repro.isa.opcodes import OpClass, Opcode
from repro.isa.registers import ArchReg
from repro.isa.uop import UopBuilder
from repro.trace.profiles import (
    SPEC_INT_2000,
    SPEC_INT_NAMES,
    BenchmarkProfile,
    InstructionMix,
    average_profile,
    get_profile,
)
from repro.trace.slicing import NUM_SLICES, select_simulation_slice, slice_trace
from repro.trace.trace import Trace
from repro.trace.workloads import (
    TOTAL_WORKLOAD_APPS,
    WORKLOAD_CATEGORIES,
    build_workload_suite,
    iter_category_apps,
)


def _toy_trace(n=10):
    builder = UopBuilder()
    trace = Trace(name="toy")
    prev_uid = None
    for i in range(n):
        uop = builder.alu(Opcode.ADD, ArchReg.EAX, (ArchReg.EAX,), pc=0x1000 + 4 * i)
        uop = uop.with_values([i], i + 1)
        uop.producer_uids = (prev_uid,)
        trace.uops.append(uop)
        prev_uid = uop.uid
    return trace


class TestTraceContainer:
    def test_len_and_iter(self):
        trace = _toy_trace(5)
        assert len(trace) == 5
        assert len(list(trace)) == 5

    def test_getitem_slice_returns_trace(self):
        trace = _toy_trace(10)
        head = trace[:3]
        assert isinstance(head, Trace)
        assert len(head) == 3
        assert head.name == trace.name

    def test_head(self):
        assert len(_toy_trace(10).head(4)) == 4

    def test_validate_accepts_consistent_trace(self):
        _toy_trace(20).validate()

    def test_validate_rejects_forward_reference(self):
        trace = _toy_trace(3)
        trace.uops[0].producer_uids = (99,)
        with pytest.raises(ValueError):
            trace.validate()

    def test_validate_rejects_duplicate_uids(self):
        trace = _toy_trace(3)
        trace.uops[2].uid = trace.uops[1].uid
        with pytest.raises(ValueError):
            trace.validate()

    def test_stats_counts(self):
        trace = _toy_trace(8)
        stats = trace.stats()
        assert stats.num_uops == 8
        assert stats.class_counts[OpClass.ALU] == 8
        assert 0.0 <= stats.narrow_result_fraction <= 1.0

    def test_producer_map(self):
        trace = _toy_trace(4)
        mapping = trace.producer_map()
        assert mapping[trace.uops[2].uid] is trace.uops[2]


class TestProfiles:
    def test_twelve_spec_benchmarks(self):
        assert len(SPEC_INT_NAMES) == 12
        for name in ("bzip2", "gcc", "gzip", "mcf", "vpr"):
            assert name in SPEC_INT_2000

    def test_get_profile_known(self):
        assert get_profile("gcc").name == "gcc"

    def test_get_profile_unknown_raises(self):
        with pytest.raises(KeyError):
            get_profile("nonexistent")

    def test_mix_normalisation(self):
        mix = InstructionMix(alu=2, load=1, store=1, cond_branch=0, uncond_branch=0,
                             mul=0, div=0, fp=0).normalized()
        assert abs(mix.alu - 0.5) < 1e-9
        assert abs(sum(mix.as_dict().values()) - 1.0) < 1e-9

    def test_mix_normalisation_rejects_zero(self):
        with pytest.raises(ValueError):
            InstructionMix(alu=0, load=0, store=0, cond_branch=0, uncond_branch=0,
                           mul=0, div=0, fp=0).normalized()

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(name="bad", narrow_data_fraction=1.5)
        with pytest.raises(ValueError):
            BenchmarkProfile(name="bad", loop_trip_mean=0)

    def test_scaled_override(self):
        profile = get_profile("gcc").scaled(narrow_data_fraction=0.1)
        assert profile.narrow_data_fraction == 0.1
        assert get_profile("gcc").narrow_data_fraction != 0.1

    def test_average_profile(self):
        avg = average_profile()
        assert 0.0 < avg.narrow_data_fraction < 1.0
        assert avg.name == "avg"

    def test_profiles_reflect_paper_ordering(self):
        # gzip and bzip2 are the byte-crunching codes; crafty/vpr the widest.
        assert SPEC_INT_2000["gzip"].narrow_data_fraction > SPEC_INT_2000["crafty"].narrow_data_fraction
        assert SPEC_INT_2000["bzip2"].narrow_consumer_locality < SPEC_INT_2000["gcc"].narrow_consumer_locality


class TestSlicing:
    def test_slice_count(self):
        trace = _toy_trace(100)
        slices = slice_trace(trace)
        assert len(slices) == NUM_SLICES
        assert sum(len(s) for s in slices) == 100

    def test_slice_remainder_goes_to_last(self):
        slices = slice_trace(_toy_trace(105))
        assert len(slices[-1]) >= len(slices[0])

    def test_slice_empty_trace(self):
        slices = slice_trace(Trace(name="empty"))
        assert len(slices) == NUM_SLICES
        assert all(len(s) == 0 for s in slices)

    def test_invalid_slice_count(self):
        with pytest.raises(ValueError):
            slice_trace(_toy_trace(10), num_slices=0)

    def test_select_simulation_slice_starts_at_fourth(self):
        trace = _toy_trace(100)
        selected = select_simulation_slice(trace)
        # slices of 10; the fourth slice starts at uop index 30
        assert selected.uops[0].uid == trace.uops[30].uid
        assert len(selected) == 10

    def test_select_multiple_slices(self):
        selected = select_simulation_slice(_toy_trace(100), slices_to_run=2)
        assert len(selected) == 20

    def test_select_validation(self):
        with pytest.raises(ValueError):
            select_simulation_slice(_toy_trace(10), start_slice=99)
        with pytest.raises(ValueError):
            select_simulation_slice(_toy_trace(10), slices_to_run=0)


class TestWorkloads:
    def test_table2_categories(self):
        assert set(WORKLOAD_CATEGORIES) == {"enc", "sfp", "kernels", "mm", "office",
                                            "prod", "ws"}
        assert WORKLOAD_CATEGORIES["enc"].num_traces == 62
        assert WORKLOAD_CATEGORIES["mm"].num_traces == 85

    def test_total_app_count_matches_table2(self):
        assert TOTAL_WORKLOAD_APPS == 62 + 41 + 52 + 85 + 75 + 45 + 49

    def test_build_full_suite(self):
        suite = build_workload_suite(apps_per_category=3)
        assert len(suite) == 3 * len(WORKLOAD_CATEGORIES)
        assert all(app.profile.category == app.category for app in suite)

    def test_suite_deterministic(self):
        a = build_workload_suite(apps_per_category=2)
        b = build_workload_suite(apps_per_category=2)
        assert [(x.name, x.seed) for x in a] == [(x.name, x.seed) for x in b]
        assert all(x.profile.narrow_data_fraction == y.profile.narrow_data_fraction
                   for x, y in zip(a, b))

    def test_unknown_category_raises(self):
        with pytest.raises(KeyError):
            build_workload_suite(categories=["bogus"])

    def test_iter_category(self):
        apps = list(iter_category_apps("kernels", apps_per_category=4))
        assert len(apps) == 4
        assert all(a.category == "kernels" for a in apps)

    def test_perturbation_stays_in_bounds(self):
        for app in build_workload_suite(apps_per_category=5):
            p = app.profile
            assert 0.0 <= p.narrow_data_fraction <= 1.0
            assert 0.0 <= p.width_locality <= 1.0
            assert p.static_loops >= 2
