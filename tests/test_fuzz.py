"""Tests for the differential fuzzing harness (``repro.fuzz``).

Covers the contracts DESIGN.md § "Differential fuzzing" promises:

* case generation is a pure function of the seed (byte-identical text),
* cases round-trip losslessly through the JSON corpus format,
* a small campaign runs green end to end (the nightly job's fast path),
* every committed corpus entry under ``tests/fuzz_corpus/`` still passes,
* an injected event-wheel divergence is *caught* and *shrunk* to a small
  reproducer (mutation-testing the harness itself), and
* the shrinker respects its evaluation budget and only ever returns a
  still-failing case.
"""

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core.config import ClusterSpec, Topology, random_topology
from repro.core.steering import policy_registry, random_policy_spec
from repro.fuzz import (
    FuzzCase,
    case_from_dict,
    case_text,
    case_to_dict,
    generate_case,
    load_corpus_dir,
    run_campaign,
    run_case,
    shrink_case,
    write_corpus_entry,
    write_repro_script,
)
from repro.sim.simulator import HelperClusterSimulator
from repro.trace.profiles import get_profile

CORPUS_DIR = Path(__file__).parent / "fuzz_corpus"


# ---------------------------------------------------------------------------
# determinism + serialization
# ---------------------------------------------------------------------------
def test_same_seed_regenerates_byte_identical_cases():
    for seed in range(20):
        assert case_text(generate_case(seed)) == case_text(generate_case(seed))


def test_distinct_seeds_explore_distinct_cases():
    texts = {case_text(generate_case(seed)) for seed in range(20)}
    assert len(texts) == 20


def test_case_round_trips_through_json():
    for seed in range(20):
        case = generate_case(seed)
        rebuilt = case_from_dict(json.loads(json.dumps(case_to_dict(case))))
        assert case_text(rebuilt) == case_text(case)


def test_case_dict_rejects_unknown_format():
    data = case_to_dict(generate_case(0))
    data["format"] = 999
    with pytest.raises(ValueError, match="format"):
        case_from_dict(data)


def test_random_topology_and_policy_are_deterministic():
    import random

    for seed in range(10):
        a = random_topology(random.Random(seed))
        b = random_topology(random.Random(seed))
        assert a == b
        pa = random_policy_spec(random.Random(seed))
        pb = random_policy_spec(random.Random(seed))
        assert pa.to_key_dict() == pb.to_key_dict()


# ---------------------------------------------------------------------------
# campaigns + corpus replay
# ---------------------------------------------------------------------------
def test_small_campaign_runs_green(tmp_path):
    campaign = run_campaign(4, seed=2006, out_dir=tmp_path / "failures")
    assert campaign.cases_run == 4
    assert campaign.ok, [r.failures for r in campaign.reports]
    assert campaign.stop_reason == "completed"
    assert not (tmp_path / "failures").exists()  # nothing failed => no dir


def test_campaign_time_budget_stops_early():
    campaign = run_campaign(1000, seed=0, time_budget=0.0)
    assert campaign.cases_run == 0
    assert "time budget" in campaign.stop_reason


def test_committed_corpus_replays_green():
    entries = load_corpus_dir(CORPUS_DIR)
    assert entries, "the committed fuzz corpus must not be empty"
    for name, case in entries:
        report = run_case(case)
        assert report.ok, (name, report.failures)


def test_corpus_entries_are_replayable_files(tmp_path):
    case = generate_case(7)
    path = write_corpus_entry(case, tmp_path, "entry-7", "round-trip pin")
    (name, loaded), = load_corpus_dir(tmp_path)
    assert name == "entry-7"
    assert case_text(loaded) == case_text(case)
    assert path.read_text().endswith("\n")


def test_repro_script_is_self_contained(tmp_path):
    case = generate_case(3)
    script = write_repro_script(case, tmp_path / "repro.py",
                                ["example failure line"])
    text = script.read_text()
    assert "example failure line" in text
    assert json.dumps(case_to_dict(case), indent=2, sort_keys=True) in text


# ---------------------------------------------------------------------------
# mutation testing: an injected wheel divergence must be caught and shrunk
# ---------------------------------------------------------------------------
def _mutation_case() -> FuzzCase:
    """A mid-sized three-cluster case the shrinker has real work to do on.

    The ratio-4 helper matters: multi-cycle idle hops — the wheel-only
    aggregation the skew below corrupts — only exist when the fast clock
    runs at 3x the host or more (at ratio 2 every idle hop is one cycle).
    """
    topology = Topology((
        ClusterSpec(name="wide", datapath_width=32, clock_ratio=1,
                    has_fp=True),
        ClusterSpec(name="narrow0", datapath_width=8, clock_ratio=4),
        ClusterSpec(name="narrow1", datapath_width=16, clock_ratio=2),
    ))
    return FuzzCase(case_seed=None, profile=get_profile("gcc"),
                    trace_uops=2_000, trace_seed=2006, use_slicing=False,
                    topology=topology,
                    policy=policy_registry.get("n888"))


def test_injected_wheel_divergence_is_caught_and_shrunk(monkeypatch):
    original = HelperClusterSimulator._record_idle_cycles

    def skewed(self, cycles):
        # The reference loop samples idle stretches one cycle at a time;
        # only the event wheel passes aggregated multi-cycle hops.  Skewing
        # those corrupts the wheel's sampling statistics alone — exactly
        # the class of bug the differential harness exists to catch.
        if cycles > 1:
            cycles += 1
        original(self, cycles)

    monkeypatch.setattr(HelperClusterSimulator, "_record_idle_cycles", skewed)

    case = _mutation_case()
    report = run_case(case, check_stores=False)
    assert not report.ok
    assert any("diverged" in failure for failure in report.failures)

    minimal, evals = shrink_case(case)
    assert evals <= 60
    # The ISSUE's acceptance bar: a minimal reproducer, not the original.
    assert minimal.trace_uops <= 500
    assert len(minimal.topology.clusters) <= 2
    assert not run_case(minimal, check_stores=False).ok


def test_mutation_campaign_emits_artifacts(monkeypatch, tmp_path):
    original_run = HelperClusterSimulator.run

    def buggy_run(self):
        # Simulated wheel-only accounting bug: the event-wheel branch
        # over-counts copies by one.  Unlike the sampling skew above this
        # diverges on every topology, so a 3-case campaign reliably fails.
        result = original_run(self)
        if not self._reference_loop:
            result.copies += 1
        return result

    monkeypatch.setattr(HelperClusterSimulator, "run", buggy_run)

    out = tmp_path / "failures"
    corpus = tmp_path / "corpus"
    campaign = run_campaign(3, seed=0, out_dir=out, corpus_dir=corpus,
                            max_failures=1, check_stores=False)
    assert campaign.reports, "the skewed wheel must produce failures"
    assert "failure budget" in campaign.stop_reason
    scripts = list(out.glob("repro-*.py"))
    assert scripts, "each failure must emit a repro script"
    assert list(out.glob("*-shrunk.json")) and list(out.glob("*-original.json"))
    assert load_corpus_dir(corpus), "failures must land in the corpus dir"


# ---------------------------------------------------------------------------
# shrinker behaviour
# ---------------------------------------------------------------------------
def test_shrink_respects_evaluation_budget():
    case = generate_case(11)
    calls = []

    def always_fails(candidate):
        calls.append(candidate)
        return True

    minimal, evals = shrink_case(case, predicate=always_fails, max_evals=7)
    assert evals == 7 and len(calls) == 7
    assert minimal.trace_uops < case.trace_uops  # budget went to length first


def test_shrink_keeps_the_original_when_nothing_smaller_fails():
    case = generate_case(11)

    def only_original_fails(candidate):
        return case_text(candidate) == case_text(case)

    minimal, _ = shrink_case(case, predicate=only_original_fails)
    assert case_text(minimal) == case_text(case)


def test_shrink_prefers_fewer_uops_and_clusters():
    case = _mutation_case()

    def size_failure(candidate):
        # Fails regardless of size: every shrink stage can make progress.
        return True

    minimal, _ = shrink_case(case, predicate=size_failure)
    assert minimal.trace_uops == 20
    assert len(minimal.topology.clusters) == 1
    assert not minimal.policy.schemes or minimal.policy.selector == "least_loaded"


# ---------------------------------------------------------------------------
# invariant checkers on healthy runs
# ---------------------------------------------------------------------------
def test_commit_hook_sees_every_committed_uop():
    from repro.fuzz import CommitOrderRecorder

    case = replace(generate_case(5), trace_uops=500)
    config = case.machine_config()
    trace = case.build_trace()
    recorder = CommitOrderRecorder(config.commit_width)
    sim = HelperClusterSimulator(trace, config=config,
                                 policy=case.policy.build())
    sim.commit_hook = recorder
    result = sim.run()
    assert recorder.violations == []
    assert recorder.retired_entries == result.committed_uops


def test_result_invariants_flag_impossible_results():
    from repro.fuzz import check_result_invariants

    case = replace(generate_case(5), trace_uops=300)
    config = case.machine_config()
    trace = case.build_trace()  # sliced cases commit len(trace), not trace_uops
    result = HelperClusterSimulator(trace, config=config,
                                    policy=case.policy.build()).run()
    assert check_result_invariants(result, config, len(trace)) == []
    result.committed_uops += 1
    result.fast_cycles += 1  # breaks the fast/slow ratio identity too
    violations = check_result_invariants(result, config, len(trace))
    assert any("committed_uops" in v for v in violations)
    assert any("clock arithmetic" in v for v in violations)
