"""Event-wheel ≡ reference-loop equivalence.

The simulator's event-wheel core (`HelperClusterSimulator.run`) must produce
the bit-identical `SimulationResult` of the straightforward per-cycle
reference loop kept behind ``REPRO_REFERENCE_LOOP=1``
(`_run_reference`) — every field, per-cluster energy breakdowns included.
The test is randomized over benchmark profiles, trace lengths, seeds,
topologies (the paper's machine, the monolithic baseline, multi-helper and
asymmetric mixes) and every registered policy, so any future wheel
optimisation that stops being timing-transparent fails here inside tier-1.

The equivalence classes are parametrized over the simulator backend: the
wheel side runs once under the pure-python backend and once under the
compiled ``repro._corekernel`` backend (skipped when the extension is not
built), each against the always-pure-python reference loop.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.core.config import (
    baseline_config,
    helper_cluster_config,
    helper_topology,
    mixed_helper_topology,
    monolithic_topology,
    topology_config,
)
from repro.core.steering import make_policy, policy_registry
from repro.sim.hotstate import compiled_available
from repro.sim.simulator import HelperClusterSimulator
from repro.trace.profiles import SPEC_INT_2000, SPEC_INT_NAMES
from repro.trace.synthetic import generate_trace

#: Simulator backends the equivalence sweep runs the wheel side under.
BACKENDS = [
    "python",
    pytest.param("compiled", marks=pytest.mark.skipif(
        not compiled_available(),
        reason="repro._corekernel extension not built")),
]

#: Machine shapes the randomized sweep draws from: the paper's design point,
#: the monolithic baseline, a two-helper machine, a slow 16-bit helper and
#: the asymmetric 8-bit@2x + 16-bit@1x mix.
TOPOLOGY_FACTORIES = [
    ("paper", lambda: helper_cluster_config()),
    ("mono", lambda: topology_config(monolithic_topology())),
    ("2x8b", lambda: topology_config(helper_topology(helpers=2))),
    ("16b@1x", lambda: topology_config(helper_topology(narrow_width=16,
                                                       clock_ratio=1))),
    ("mix", lambda: topology_config(mixed_helper_topology([(8, 2), (16, 1)]))),
]


def _run_both(trace, config, policy_name, backend="python"):
    """One (trace, machine, policy) point under both loop implementations.

    ``backend`` selects the wheel side's simulator backend; the reference
    loop is always pure python, so a compiled-backend run is checked
    against a fully independent implementation.
    """
    wheel = HelperClusterSimulator(
        trace, config=config, policy=make_policy(policy_name),
        reference_loop=False, backend=backend).run()
    reference = HelperClusterSimulator(
        trace, config=config, policy=make_policy(policy_name),
        reference_loop=True).run()
    return wheel, reference


def _assert_identical(wheel, reference, context):
    # Pickle equality covers every SimulationResult field at full precision:
    # cycles, IPC, prediction breakdowns, imbalance, occupancies, activity
    # counters, per-cluster power breakdowns and ED².
    assert pickle.dumps(wheel) == pickle.dumps(reference), (
        f"event wheel diverged from the per-cycle reference loop at {context}: "
        f"wheel fc={wheel.fast_cycles} ipc={wheel.ipc} e={wheel.energy} vs "
        f"reference fc={reference.fast_cycles} ipc={reference.ipc} "
        f"e={reference.energy}")


@pytest.mark.parametrize("backend", BACKENDS)
class TestEventWheelEquivalence:
    def test_randomized_points(self, backend):
        """Random (profile, length, seed, topology, policy) draws."""
        rng = random.Random(0xE7E)
        policies = [name for name in policy_registry.names()
                    if name != "baseline"]
        for draw in range(8):
            benchmark = rng.choice(SPEC_INT_NAMES)
            uops = rng.randrange(1_500, 3_500)
            seed = rng.randrange(1, 10_000)
            topo_name, factory = rng.choice(TOPOLOGY_FACTORIES)
            config = factory()
            policy_name = ("baseline" if topo_name == "mono"
                           else rng.choice(policies))
            trace = generate_trace(SPEC_INT_2000[benchmark], uops, seed=seed)
            wheel, reference = _run_both(trace, config, policy_name,
                                         backend=backend)
            _assert_identical(
                wheel, reference,
                f"draw {draw}: {benchmark}/{policy_name}/{topo_name} "
                f"uops={uops} seed={seed} backend={backend}")

    def test_every_registered_policy_on_the_paper_machine(self, backend):
        """All registered policies (width-aware variants included)."""
        trace = generate_trace(SPEC_INT_2000["gcc"], 2_000, seed=2006)
        for policy_name in policy_registry.names():
            config = (baseline_config() if policy_name == "baseline"
                      else helper_cluster_config())
            wheel, reference = _run_both(trace, config, policy_name,
                                         backend=backend)
            _assert_identical(wheel, reference,
                              f"policy {policy_name} backend={backend}")

    def test_every_registered_policy_on_the_mixed_machine(self, backend):
        """All helper policies on the asymmetric 8-bit@2x + 16-bit@1x mix."""
        trace = generate_trace(SPEC_INT_2000["parser"], 2_000, seed=7)
        config = topology_config(mixed_helper_topology([(8, 2), (16, 1)]))
        for policy_name in policy_registry.helper_names():
            wheel, reference = _run_both(trace, config, policy_name,
                                         backend=backend)
            _assert_identical(wheel, reference,
                              f"mixed/{policy_name} backend={backend}")


class TestReferenceLoopKnob:
    def test_env_var_selects_reference_loop(self, monkeypatch):
        trace = generate_trace(SPEC_INT_2000["gzip"], 500, seed=1)
        monkeypatch.setenv("REPRO_REFERENCE_LOOP", "1")
        sim = HelperClusterSimulator(trace, config=helper_cluster_config(),
                                     policy=make_policy("ir"))
        assert sim._reference_loop
        monkeypatch.setenv("REPRO_REFERENCE_LOOP", "0")
        sim = HelperClusterSimulator(trace, config=helper_cluster_config(),
                                     policy=make_policy("ir"))
        assert not sim._reference_loop

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        trace = generate_trace(SPEC_INT_2000["gzip"], 500, seed=1)
        monkeypatch.setenv("REPRO_REFERENCE_LOOP", "1")
        sim = HelperClusterSimulator(trace, config=helper_cluster_config(),
                                     policy=make_policy("ir"),
                                     reference_loop=False)
        assert not sim._reference_loop
