"""Cross-module integration and failure-injection tests.

These exercise paths that unit tests do not: the packaged entry points, the
workload-suite end-to-end flow, simulation of hand-built (non-generator)
traces, and robustness to degenerate configurations.
"""

import pytest

from repro import quick_speedup
from repro.core.config import helper_cluster_config
from repro.core.steering import make_policy
from repro.isa.opcodes import Opcode
from repro.isa.registers import ArchReg
from repro.isa.uop import UopBuilder
from repro.power.energy import report_from_activity
from repro.sim.baseline import simulate_baseline
from repro.sim.simulator import simulate
from repro.trace.synthetic import generate_trace
from repro.trace.trace import Trace
from repro.trace.workloads import build_workload_suite


def _hand_built_trace(n_iterations=40):
    """A tiny hand-written loop trace (independent of the generator)."""
    builder = UopBuilder()
    trace = Trace(name="handmade")
    last = {reg: None for reg in ArchReg}

    def emit(uop, result=None, flags=None, srcs_vals=()):
        uop = uop.with_values(srcs_vals, result, flags)
        uop.producer_uids = tuple(last.get(reg) for reg in uop.srcs)
        uop.flags_producer_uid = last[ArchReg.FLAGS] if uop.reads_flags else None
        trace.uops.append(uop)
        if uop.has_dest:
            last[uop.dest] = uop.uid
        if uop.writes_flags:
            last[ArchReg.FLAGS] = uop.uid
        return uop

    emit(builder.make(Opcode.MOVI, pc=0x1000, dest=ArchReg.ESI, imm=0x08000000),
         result=0x08000000)
    emit(builder.make(Opcode.MOVI, pc=0x1004, dest=ArchReg.ECX, imm=0), result=0)
    counter = 0
    for i in range(n_iterations):
        addr = 0x08000000 + counter
        load = builder.make(Opcode.LOADB, pc=0x1010, srcs=(ArchReg.ESI, ArchReg.ECX),
                            dest=ArchReg.EAX, mem_addr=addr, mem_size=1)
        emit(load, result=(i * 7) & 0xFF, srcs_vals=(0x08000000, counter))
        add = builder.make(Opcode.ADD, pc=0x1014, srcs=(ArchReg.EAX,),
                           dest=ArchReg.EBX, imm=3)
        emit(add, result=((i * 7) & 0xFF) + 3, flags=0, srcs_vals=(((i * 7) & 0xFF),))
        counter += 1
        inc = builder.make(Opcode.INC, pc=0x1018, srcs=(ArchReg.ECX,), dest=ArchReg.ECX)
        emit(inc, result=counter, flags=0, srcs_vals=(counter - 1,))
        cmp_uop = builder.make(Opcode.CMP, pc=0x101C, srcs=(ArchReg.ECX,),
                               imm=n_iterations)
        emit(cmp_uop, flags=0x2 if counter == n_iterations else 0,
             srcs_vals=(counter,))
        br = builder.make(Opcode.BR_COND, pc=0x1020, srcs=(ArchReg.FLAGS,),
                          is_taken=counter < n_iterations)
        emit(br, srcs_vals=(0,))
    trace.validate()
    return trace


class TestHandBuiltTrace:
    def test_baseline_executes_handmade_trace(self):
        trace = _hand_built_trace()
        result = simulate_baseline(trace)
        assert result.committed_uops == len(trace)

    def test_helper_executes_handmade_trace_and_uses_narrow_cluster(self):
        trace = _hand_built_trace()
        result = simulate(trace, config=helper_cluster_config(),
                          policy=make_policy("n888_br_lr_cr"))
        assert result.committed_uops == len(trace)
        # The loop body is entirely narrow (byte loads, small adds, a counter
        # below 256), so a substantial share must reach the helper cluster.
        assert result.helper_fraction > 0.2

    def test_branches_follow_flags_producer(self):
        trace = _hand_built_trace()
        result = simulate(trace, config=helper_cluster_config(),
                          policy=make_policy("n888_br"))
        assert result.steer_reasons.get("br_narrow_flag", 0) > 0


class TestWorkloadSuiteEndToEnd:
    def test_one_app_per_category_simulates(self):
        apps = build_workload_suite(apps_per_category=1)
        assert len(apps) == 7
        for app in apps[:3]:
            trace = generate_trace(app.profile, 800, seed=app.seed)
            base = simulate_baseline(trace)
            helper = simulate(trace, config=helper_cluster_config(),
                              policy=make_policy("n888_br_lr_cr"))
            assert base.committed_uops == helper.committed_uops == len(trace)


class TestEnergyIntegration:
    def test_energy_reports_from_simulation(self, tiny_trace):
        base = simulate_baseline(tiny_trace)
        helper = simulate(tiny_trace, config=helper_cluster_config(),
                          policy=make_policy("ir"))
        base_report = report_from_activity(base.activity, base.slow_cycles, "base")
        helper_report = report_from_activity(helper.activity, helper.slow_cycles, "ir")
        assert base_report.energy > 0
        assert helper_report.energy > 0
        # The helper machine fetches/executes the same committed work plus
        # copies, so its raw energy is at least comparable to the baseline's.
        assert helper_report.energy >= base_report.energy * 0.8


class TestDegenerateConfigurations:
    def test_tiny_scheduler_still_completes(self, tiny_trace):
        config = helper_cluster_config().with_scheduler(queue_size=4, issue_width=1)
        result = simulate(tiny_trace, config=config, policy=make_policy("n888"))
        assert result.committed_uops == len(tiny_trace)

    def test_tiny_rob_still_completes(self, tiny_trace):
        from dataclasses import replace
        config = replace(helper_cluster_config(), rob_size=16)
        result = simulate(tiny_trace, config=config, policy=make_policy("n888_br_lr_cr"))
        assert result.committed_uops == len(tiny_trace)

    def test_predictor_of_one_entry_rejected(self):
        with pytest.raises(ValueError):
            helper_cluster_config(predictor_entries=3)

    def test_quick_speedup_with_custom_config(self):
        config = helper_cluster_config(narrow_width=16)
        result = quick_speedup("gzip", policy="n888", trace_uops=800, seed=2,
                               config=config)
        assert "speedup" in result
