"""Tests for the pipeline substrate: clocking, rename, ROB, scheduler, MOB,
execution units, frontend and recovery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.opcodes import Opcode
from repro.isa.registers import ArchReg
from repro.memory.tracecache import TraceCache, TraceCacheConfig
from repro.pipeline.clocking import ClockDomain, ClockingModel
from repro.pipeline.execute import ExecutionUnitPool
from repro.pipeline.frontend import Frontend
from repro.pipeline.mob import MemoryOrderBuffer
from repro.pipeline.recovery import RecoveryManager
from repro.pipeline.rename import RenameTable
from repro.pipeline.rob import ReorderBuffer
from repro.pipeline.scheduler import IssueQueue, IssueQueueEntry
from repro.trace.profiles import get_profile
from repro.trace.synthetic import generate_trace


class TestClocking:
    def test_default_ratio(self):
        assert ClockingModel().ratio == 2

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            ClockingModel(ratio=0)

    def test_wide_cycles(self):
        clk = ClockingModel(ratio=2)
        assert clk.is_wide_cycle(0)
        assert not clk.is_wide_cycle(1)
        assert clk.is_wide_cycle(2)

    def test_narrow_always_active(self):
        clk = ClockingModel(ratio=2)
        assert all(clk.is_narrow_cycle(t) for t in range(10))

    def test_exec_latency_scaling(self):
        clk = ClockingModel(ratio=2)
        assert clk.exec_latency(ClockDomain.WIDE, 1) == 2
        assert clk.exec_latency(ClockDomain.NARROW, 1) == 1
        assert clk.exec_latency(ClockDomain.WIDE, 3) == 6

    def test_exec_latency_rejects_zero(self):
        with pytest.raises(ValueError):
            ClockingModel().exec_latency(ClockDomain.WIDE, 0)

    def test_conversions(self):
        clk = ClockingModel(ratio=2)
        assert clk.slow_to_fast(3) == 6
        assert clk.fast_to_slow(6) == 3.0

    def test_next_active_cycle(self):
        clk = ClockingModel(ratio=2)
        assert clk.next_active_cycle(ClockDomain.WIDE, 3) == 4
        assert clk.next_active_cycle(ClockDomain.WIDE, 4) == 4
        assert clk.next_active_cycle(ClockDomain.NARROW, 3) == 3

    def test_ratio_one_degenerates(self):
        clk = ClockingModel(ratio=1)
        assert clk.is_wide_cycle(3)
        assert clk.exec_latency(ClockDomain.WIDE, 1) == 1


class TestRenameTable:
    def test_defaults(self):
        table = RenameTable()
        entry = table.entry(ArchReg.EAX)
        assert entry.written_back and entry.narrow

    def test_allocate_and_writeback(self):
        table = RenameTable()
        table.allocate(ArchReg.EAX, 7, ClockDomain.NARROW, predicted_narrow=True)
        assert not table.source_width_known(ArchReg.EAX)
        assert table.producer_domain(ArchReg.EAX) is ClockDomain.NARROW
        table.writeback(ArchReg.EAX, 7, narrow=False)
        assert table.source_width_known(ArchReg.EAX)
        assert not table.source_is_narrow(ArchReg.EAX)

    def test_stale_writeback_ignored(self):
        table = RenameTable()
        table.allocate(ArchReg.EAX, 7, ClockDomain.NARROW, True)
        table.allocate(ArchReg.EAX, 9, ClockDomain.WIDE, False)
        table.writeback(ArchReg.EAX, 7, narrow=True)
        assert not table.source_width_known(ArchReg.EAX)
        assert table.producer_uid(ArchReg.EAX) == 9

    def test_cr_refcount_lifecycle(self):
        table = RenameTable()
        table.link_upper_bits(ArchReg.EAX, ArchReg.ESI)
        table.link_upper_bits(ArchReg.EBX, ArchReg.ESI)
        assert table.upper_bits_refcount(ArchReg.ESI) == 2
        assert not table.can_deallocate(ArchReg.ESI)
        table.release_upper_bits(ArchReg.ESI)
        table.release_upper_bits(ArchReg.ESI)
        assert table.can_deallocate(ArchReg.ESI)

    def test_rename_releases_previous_cr_link(self):
        table = RenameTable()
        table.link_upper_bits(ArchReg.EAX, ArchReg.ESI)
        assert table.upper_bits_refcount(ArchReg.ESI) == 1
        table.allocate(ArchReg.EAX, 3, ClockDomain.WIDE, True)
        assert table.upper_bits_refcount(ArchReg.ESI) == 0

    def test_reset(self):
        table = RenameTable()
        table.allocate(ArchReg.EAX, 1, ClockDomain.NARROW, False)
        table.link_upper_bits(ArchReg.EAX, ArchReg.ESI)
        table.reset()
        assert table.source_width_known(ArchReg.EAX)
        assert table.upper_bits_refcount(ArchReg.ESI) == 0


class TestROB:
    def test_allocate_commit_in_order(self):
        rob = ReorderBuffer(size=8, commit_width=2)
        rob.allocate(1, 1)
        rob.allocate(2, 2)
        rob.mark_completed(2)
        assert rob.commit() == []           # head not complete
        rob.mark_completed(1)
        retired = rob.commit()
        assert [e.uid for e in retired] == [1, 2]

    def test_commit_width_respected(self):
        rob = ReorderBuffer(size=16, commit_width=3)
        for i in range(6):
            rob.allocate(i, i)
            rob.mark_completed(i)
        assert len(rob.commit()) == 3
        assert len(rob.commit()) == 3

    def test_capacity(self):
        rob = ReorderBuffer(size=2)
        rob.allocate(1, 1)
        rob.allocate(2, 2)
        assert rob.is_full()
        with pytest.raises(RuntimeError):
            rob.allocate(3, 3)

    def test_out_of_order_allocation_rejected(self):
        rob = ReorderBuffer()
        rob.allocate(5, 5)
        with pytest.raises(ValueError):
            rob.allocate(4, 4)

    def test_squashed_entries_do_not_count_as_committed(self):
        rob = ReorderBuffer()
        rob.allocate(1, 1)
        rob.mark_squashed(1)
        rob.commit()
        assert rob.committed == 0

    def test_head_seq_and_occupancy(self):
        rob = ReorderBuffer()
        assert rob.head_seq() is None
        rob.allocate(3, 3)
        assert rob.head_seq() == 3
        assert rob.occupancy() == 1


class TestIssueQueue:
    @staticmethod
    def entry(uid, seq, remaining=0, memory=False):
        return IssueQueueEntry(uid=uid, seq=seq, remaining_sources=remaining,
                               fu_latency=1, is_memory=memory)

    def test_insert_and_capacity(self):
        queue = IssueQueue(size=2, issue_width=1)
        queue.insert(self.entry(1, 1))
        queue.insert(self.entry(2, 2))
        assert queue.is_full()
        with pytest.raises(RuntimeError):
            queue.insert(self.entry(3, 3))

    def test_forced_insert_overrides_capacity(self):
        queue = IssueQueue(size=1, issue_width=1)
        queue.insert(self.entry(1, 1))
        queue.insert(self.entry(2, 2), force=True)
        assert len(queue) == 2

    def test_duplicate_uid_rejected(self):
        queue = IssueQueue()
        queue.insert(self.entry(1, 1))
        with pytest.raises(ValueError):
            queue.insert(self.entry(1, 2))

    def test_select_oldest_first(self):
        queue = IssueQueue(size=8, issue_width=2)
        queue.insert(self.entry(10, 5))
        queue.insert(self.entry(11, 3))
        queue.insert(self.entry(12, 4))
        selected = queue.select()
        assert [e.seq for e in selected] == [3, 4]

    def test_select_skips_not_ready(self):
        queue = IssueQueue(size=8, issue_width=4)
        queue.insert(self.entry(1, 1, remaining=1))
        queue.insert(self.entry(2, 2))
        assert [e.uid for e in queue.select()] == [2]

    def test_wakeup_enables_selection(self):
        queue = IssueQueue()
        queue.insert(self.entry(1, 1, remaining=2))
        queue.wakeup(1)
        assert queue.select() == []
        queue.wakeup(1)
        assert [e.uid for e in queue.select()] == [1]

    def test_wakeup_unknown_uid_is_noop(self):
        queue = IssueQueue()
        queue.wakeup(999)

    def test_memory_port_limit(self):
        queue = IssueQueue(size=8, issue_width=4)
        queue.insert(self.entry(1, 1, memory=True))
        queue.insert(self.entry(2, 2, memory=True))
        queue.insert(self.entry(3, 3, memory=True))
        selected = queue.select(memory_slots=2)
        assert len(selected) == 2

    def test_flush_from(self):
        queue = IssueQueue()
        for i in range(6):
            queue.insert(self.entry(i, i))
        squashed = queue.flush_from(3)
        assert [e.seq for e in squashed] == [3, 4, 5]
        assert len(queue) == 3

    def test_drain(self):
        queue = IssueQueue()
        queue.insert(self.entry(1, 1))
        queue.insert(self.entry(2, 2))
        assert [e.seq for e in queue.drain()] == [1, 2]
        assert len(queue) == 0

    def test_occupancy_sampling(self):
        queue = IssueQueue()
        queue.insert(self.entry(1, 1))
        queue.sample_occupancy()
        queue.sample_occupancy()
        assert queue.mean_occupancy == 1.0

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=50,
                    unique=True))
    @settings(max_examples=50, deadline=None)
    def test_select_never_exceeds_width(self, seqs):
        queue = IssueQueue(size=64, issue_width=3)
        for i, seq in enumerate(seqs):
            queue.insert(self.entry(i, seq))
        assert len(queue.select()) <= 3


class TestMOB:
    def test_allocate_release(self):
        mob = MemoryOrderBuffer(load_entries=2, store_entries=2)
        mob.allocate(1, 1, is_store=False, addr=0x10)
        assert mob.load_occupancy() == 1
        mob.release(1)
        assert mob.load_occupancy() == 0

    def test_capacity(self):
        mob = MemoryOrderBuffer(load_entries=1, store_entries=1)
        mob.allocate(1, 1, is_store=False, addr=0x10)
        assert not mob.can_allocate(is_store=False)
        with pytest.raises(RuntimeError):
            mob.allocate(2, 2, is_store=False, addr=0x20)
        assert mob.can_allocate(is_store=True)

    def test_forwarding(self):
        mob = MemoryOrderBuffer()
        mob.allocate(1, 1, is_store=True, addr=0x40)
        hit = mob.forwarding_store(load_seq=5, addr=0x40)
        assert hit is not None and hit.uid == 1
        assert mob.forwarding_store(load_seq=5, addr=0x44) is None

    def test_forwarding_ignores_younger_stores(self):
        mob = MemoryOrderBuffer()
        mob.allocate(9, 9, is_store=True, addr=0x40)
        assert mob.forwarding_store(load_seq=5, addr=0x40) is None

    def test_flush_from(self):
        mob = MemoryOrderBuffer()
        mob.allocate(1, 1, is_store=False, addr=0x1)
        mob.allocate(2, 5, is_store=True, addr=0x2)
        squashed = mob.flush_from(3)
        assert squashed == [2]
        assert mob.store_occupancy() == 0


class TestExecutionUnits:
    def test_narrow_pool_has_no_fpu(self):
        pool = ExecutionUnitPool(domain=ClockDomain.NARROW, clocking=ClockingModel(),
                                 has_fp=False)
        assert not pool.supports(Opcode.FADD)
        assert pool.supports(Opcode.ADD)

    def test_latency_scaling_by_domain(self):
        clk = ClockingModel(ratio=2)
        wide = ExecutionUnitPool(domain=ClockDomain.WIDE, clocking=clk)
        narrow = ExecutionUnitPool(domain=ClockDomain.NARROW, clocking=clk, has_fp=False)
        assert wide.exec_latency(Opcode.ADD) == 2
        assert narrow.exec_latency(Opcode.ADD) == 1

    def test_issue_returns_completion(self):
        pool = ExecutionUnitPool(domain=ClockDomain.WIDE, clocking=ClockingModel())
        assert pool.try_issue(Opcode.ADD, 10) == 12

    def test_non_pipelined_divider(self):
        pool = ExecutionUnitPool(domain=ClockDomain.WIDE, clocking=ClockingModel())
        assert pool.try_issue(Opcode.DIV, 0) is not None
        assert pool.try_issue(Opcode.DIV, 1) is None  # single divider busy
        assert pool.structural_stalls == 1

    def test_alus_pipelined(self):
        pool = ExecutionUnitPool(domain=ClockDomain.WIDE, clocking=ClockingModel())
        for i in range(3):
            assert pool.try_issue(Opcode.ADD, 0) is not None
        # only 3 IALUs per cycle
        assert pool.try_issue(Opcode.ADD, 0) is None
        # next cycle they accept again
        assert pool.try_issue(Opcode.ADD, 1) is not None

    def test_reset(self):
        pool = ExecutionUnitPool(domain=ClockDomain.WIDE, clocking=ClockingModel())
        pool.try_issue(Opcode.DIV, 0)
        pool.reset()
        assert pool.try_issue(Opcode.DIV, 0) is not None


class TestFrontend:
    def _frontend(self, n=200, fetch_width=6):
        trace = generate_trace(get_profile("gcc"), n, seed=3)
        return Frontend(trace, fetch_width=fetch_width)

    @staticmethod
    def _fetch_warm(frontend, start_cycle=0, max_cycles=200):
        """Fetch groups until one is non-empty (the first access cold-misses
        the trace cache and stalls the frontend for the rebuild penalty)."""
        cycle = start_cycle
        while cycle < start_cycle + max_cycles:
            group = frontend.fetch(cycle)
            if group:
                return group, cycle
            cycle += 1
        raise AssertionError("frontend never produced a fetch group")

    def test_fetch_width_respected(self):
        frontend = self._frontend()
        fetched, _ = self._fetch_warm(frontend)
        assert 0 < len(fetched) <= 6

    def test_cold_trace_cache_stalls_first_fetch(self):
        frontend = self._frontend()
        assert frontend.fetch(0) == []
        assert frontend.tc_stall_cycles > 0

    def test_sequential_seq_numbers(self):
        frontend = self._frontend()
        first, cycle = self._fetch_warm(frontend)
        second, _ = self._fetch_warm(frontend, start_cycle=cycle + 1)
        seqs = [f.seq for f in first + second]
        assert seqs == list(range(len(seqs)))

    def test_exhaustion(self):
        frontend = self._frontend(n=30)
        cycle = 0
        while not frontend.exhausted and cycle < 10_000:
            frontend.fetch(cycle)
            cycle += 1
        assert frontend.exhausted
        assert frontend.fetched == len(frontend.trace)

    def test_max_uops_cap(self):
        frontend = self._frontend()
        for cycle in range(200):
            group = frontend.fetch(cycle, max_uops=2)
            assert len(group) <= 2
            if group:
                break

    def test_reset(self):
        frontend = self._frontend()
        frontend.fetch(0)
        frontend.reset()
        assert frontend.fetched == 0
        assert not frontend.exhausted

    def test_invalid_parameters(self):
        trace = generate_trace(get_profile("gcc"), 100, seed=1)
        with pytest.raises(ValueError):
            Frontend(trace, fetch_width=0)
        with pytest.raises(ValueError):
            Frontend(trace, frontend_branch_resolution_fraction=1.5)

    def test_branch_target_resolution_flag(self):
        frontend = self._frontend(n=2000)
        resolved = 0
        branches = 0
        for cycle in range(2000):
            if frontend.exhausted:
                break
            for fetched in frontend.fetch(cycle):
                if fetched.uop.is_cond_branch:
                    branches += 1
                    resolved += fetched.target_resolved_in_frontend
        assert branches > 0
        assert resolved > 0


class TestRecovery:
    def test_trigger_blocks_dispatch(self):
        mgr = RecoveryManager(flush_penalty_slow=5, clock_ratio=2)
        event = mgr.trigger(trigger_uid=7, trigger_seq=7, fast_cycle=100,
                            squashed_uids=[7, 8, 9])
        assert event.refetch_ready_cycle == 110
        assert mgr.dispatch_blocked(105)
        assert not mgr.dispatch_blocked(110)

    def test_statistics(self):
        mgr = RecoveryManager()
        mgr.trigger(1, 1, 0, [1])
        mgr.trigger(2, 2, 50, [2, 3])
        assert mgr.num_recoveries == 2
        assert mgr.total_squashed == 3

    def test_invalid_penalty(self):
        with pytest.raises(ValueError):
            RecoveryManager(flush_penalty_slow=-1)

    def test_reset(self):
        mgr = RecoveryManager()
        mgr.trigger(1, 1, 0)
        mgr.reset()
        assert mgr.num_recoveries == 0
        assert not mgr.dispatch_blocked(1)
