"""Golden regression tests pinning the headline policy-ladder numbers.

Two layers of protection:

* a live mini-ladder (3 benchmarks x 3 policies, short traces) whose
  speedups are pinned to full precision — any engine or simulator hot-path
  refactor that shifts cycle accounting fails here immediately, inside
  tier-1;
* the checked-in headline artefact ``benchmarks/results/headline_policy_
  ladder.txt`` whose mean-speedup column is pinned to its published values —
  a regenerated artefact with silently shifted paper numbers cannot land
  unnoticed.

A deliberate semantic change to the simulator must update the pinned values
here, the results artefacts, and bump :data:`repro.sim.cache.SIMULATOR_VERSION`.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.sim.experiment import run_spec_suite

HEADLINE_RESULTS = (Path(__file__).parent.parent
                    / "benchmarks" / "results" / "headline_policy_ladder.txt")

#: Mean speedups (%) of the checked-in headline ladder artefact
#: (12 SPEC Int benchmarks, 8000-uop traces, seed 2006).  The harness
#: default trace length was deliberately raised from 5000 to 8000 uops when
#: the event-wheel core + cross-job trace store landed (PR 5), so these
#: values were re-stated at the new length — an experiment-scale change,
#: not a simulator-semantics change (the full-precision mini-ladder pins
#: below, stated at explicit 2500-uop traces, were untouched, and no
#: SIMULATOR_VERSION bump was needed).
HEADLINE_MEAN_SPEEDUPS = {
    "n888": 1.68,
    "n888_br": 2.65,
    "n888_br_lr": 2.66,
    "n888_br_lr_cr": 2.10,
    "n888_br_lr_cr_cp": 2.17,
    "ir": 2.20,
    "ir_nodest": 1.74,
}

#: Live mini-ladder pins: 2500-uop traces, seed 2006.  Full precision — the
#: simulator is deterministic, so any drift is a semantic change.  All four
#: policies are built through the policy registry (``PolicySpec.build``), so
#: these pins also guard the registry path: a registry-built ladder policy
#: must resolve helpers exactly as the pre-registry simulator did.
MINI_LADDER_SPEEDUPS = {
    "n888": {
        "gcc": 0.022912994712, "bzip2": 0.01707369786, "parser": 0.052312087127,
    },
    "n888_br_lr_cr": {
        "gcc": 0.041605482134, "bzip2": 0.088092485549, "parser": 0.085651132805,
    },
    "ir": {
        "gcc": 0.044673539519, "bzip2": 0.098762549615, "parser": 0.095335439509,
    },
    "ir_nodest": {
        "gcc": 0.044331752004, "bzip2": 0.101333957407, "parser": 0.093709408053,
    },
}


class TestMiniLadderGolden:
    @pytest.fixture(scope="class")
    def mini_sweep(self):
        return run_spec_suite(list(MINI_LADDER_SPEEDUPS), trace_uops=2500,
                              seed=2006, benchmarks=["gcc", "bzip2", "parser"])

    def test_per_benchmark_speedups_pinned(self, mini_sweep):
        for policy, expected in MINI_LADDER_SPEEDUPS.items():
            series = mini_sweep.speedup_series(policy)
            for benchmark, value in expected.items():
                assert series[benchmark] == pytest.approx(value, rel=1e-9), (
                    f"{benchmark}/{policy} speedup drifted: "
                    f"{series[benchmark]:.12f} != {value:.12f}")

    def test_mean_speedups_pinned(self, mini_sweep):
        means = {p: sum(v.values()) / len(v) for p, v in MINI_LADDER_SPEEDUPS.items()}
        for policy, expected in means.items():
            assert mini_sweep.mean_speedup(policy) == pytest.approx(expected, rel=1e-9)

    def test_parallel_engine_matches_golden(self, mini_sweep):
        parallel = run_spec_suite(list(MINI_LADDER_SPEEDUPS), trace_uops=2500,
                                  seed=2006,
                                  benchmarks=["gcc", "bzip2", "parser"], jobs=2,
                                  allow_oversubscribe=True)
        for policy in MINI_LADDER_SPEEDUPS:
            assert parallel.speedup_series(policy) == mini_sweep.speedup_series(policy)


class TestRegistryBuiltPolicies:
    """The registry-built final policy hits its golden pin (CI guard)."""

    def test_registry_built_ir_nodest_matches_pin(self):
        from repro.core.selection import LeastLoadedSelector
        from repro.core.steering import make_policy, policy_registry

        assert "ir_nodest" in policy_registry
        policy = make_policy("ir_nodest")
        assert isinstance(policy.selector, LeastLoadedSelector)

        sweep = run_spec_suite(["ir_nodest"], trace_uops=2500, seed=2006,
                               benchmarks=["gcc"])
        value = sweep.speedup_series("ir_nodest")["gcc"]
        expected = MINI_LADDER_SPEEDUPS["ir_nodest"]["gcc"]
        assert value == pytest.approx(expected, rel=1e-9), (
            f"registry-built ir_nodest drifted: {value:.12f} != {expected:.12f}")


class TestHeadlineArtefactGolden:
    def _parse_summary(self) -> dict:
        """Mean-speedup column of the artefact's summary table.

        Row shape: policy, selector, mean speedup %, mean helper %,
        mean copies %, mean ED2 gain %, energy by cluster.
        """
        text = HEADLINE_RESULTS.read_text(encoding="utf-8")
        means = {}
        for line in text.splitlines():
            match = re.match(r"^(\w+)\s+(\w+)\s+(-?\d+\.\d+)\s+\d+\.\d+"
                             r"\s+\d+\.\d+\s+(-?\d+\.\d+)\s+\S+", line)
            if match and match.group(1) in HEADLINE_MEAN_SPEEDUPS:
                means[match.group(1)] = float(match.group(3))
        return means

    def test_artefact_exists(self):
        assert HEADLINE_RESULTS.exists(), (
            "headline artefact missing; run the benchmark harness to regenerate")

    def test_mean_speedups_match_published(self):
        means = self._parse_summary()
        assert set(means) == set(HEADLINE_MEAN_SPEEDUPS), (
            f"summary table incomplete: parsed {sorted(means)}")
        for policy, expected in HEADLINE_MEAN_SPEEDUPS.items():
            assert means[policy] == pytest.approx(expected, abs=0.005), (
                f"headline mean speedup for {policy} shifted: "
                f"{means[policy]} != {expected} — if intentional, update "
                f"this pin and bump SIMULATOR_VERSION")
