"""Tests for the synthetic trace generator (the trace substrate).

The key properties: determinism for a (profile, seed) pair, dataflow
consistency (values actually computed through the register file), and the
statistical knobs having the intended direction of effect.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.opcodes import OpClass, Opcode, execute
from repro.isa.values import is_narrow
from repro.trace.profiles import SPEC_INT_NAMES, get_profile
from repro.trace.synthetic import SyntheticTraceGenerator, generate_trace


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate_trace(get_profile("gcc"), 2000, seed=3)
        b = generate_trace(get_profile("gcc"), 2000, seed=3)
        assert len(a) == len(b)
        assert all(x.opcode == y.opcode and x.pc == y.pc and x.result_value == y.result_value
                   for x, y in zip(a.uops, b.uops))

    def test_different_seeds_differ(self):
        a = generate_trace(get_profile("gcc"), 2000, seed=3)
        b = generate_trace(get_profile("gcc"), 2000, seed=4)
        assert any(x.result_value != y.result_value or x.opcode != y.opcode
                   for x, y in zip(a.uops, b.uops))

    def test_different_benchmarks_differ(self):
        a = generate_trace(get_profile("gcc"), 2000, seed=3)
        b = generate_trace(get_profile("gzip"), 2000, seed=3)
        assert [u.pc for u in a.uops[:50]] != [u.pc for u in b.uops[:50]]


class TestStructure:
    def test_requested_length_reached(self):
        trace = generate_trace(get_profile("parser"), 5000, seed=1)
        assert len(trace) >= 5000

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            generate_trace(get_profile("gcc"), 0)

    def test_trace_validates(self, gcc_trace_small):
        gcc_trace_small.validate()

    def test_every_benchmark_generates(self):
        for name in SPEC_INT_NAMES:
            trace = generate_trace(get_profile(name), 600, seed=5)
            trace.validate()
            assert len(trace) >= 600

    def test_static_pcs_recorded(self, gcc_trace_small):
        assert gcc_trace_small.static_pcs > 0
        observed = {uop.pc for uop in gcc_trace_small.uops}
        assert len(observed) <= gcc_trace_small.static_pcs

    def test_memory_uops_have_addresses(self, gcc_trace_small):
        for uop in gcc_trace_small.uops:
            if uop.op_class in (OpClass.LOAD, OpClass.STORE):
                assert uop.mem_addr is not None

    def test_cond_branches_read_flags(self, gcc_trace_small):
        for uop in gcc_trace_small.uops:
            if uop.is_cond_branch:
                assert uop.flags_producer_uid is not None or uop.srcs


class TestDataflowConsistency:
    def test_alu_results_recomputable(self, gcc_trace_small):
        """Every emitted ALU result must equal the opcode semantics applied to
        the recorded source values (the generator really emulates)."""
        checked = 0
        for uop in gcc_trace_small.uops:
            if uop.opcode not in (Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR,
                                  Opcode.XOR, Opcode.INC, Opcode.DEC):
                continue
            if uop.result_value is None or not uop.src_values:
                continue
            a = uop.src_values[0]
            if uop.opcode in (Opcode.INC, Opcode.DEC):
                expected, _ = execute(uop.opcode, a, 0)
            else:
                b = uop.imm if (uop.imm is not None and len(uop.src_values) < 2) else (
                    uop.src_values[1] if len(uop.src_values) > 1 else 0)
                expected, _ = execute(uop.opcode, a, b)
            assert uop.result_value == expected
            checked += 1
        assert checked > 50

    def test_producer_links_are_register_consistent(self, gcc_trace_small):
        """The recorded producer of a source register must be the most recent
        earlier writer of that register."""
        last_writer = {}
        for uop in gcc_trace_small.uops:
            for reg, producer in zip(uop.srcs, uop.producer_uids):
                assert last_writer.get(reg) == producer
            if uop.has_dest:
                last_writer[uop.dest] = uop.uid
            if uop.writes_flags:
                from repro.isa.registers import ArchReg
                last_writer[ArchReg.FLAGS] = uop.uid

    def test_loop_branches_mostly_taken(self, gcc_trace_small):
        stats = gcc_trace_small.stats()
        assert stats.cond_branch_count > 0
        assert stats.taken_branch_count / stats.cond_branch_count > 0.4


class TestStatisticalKnobs:
    def test_narrow_fraction_orders_benchmarks(self):
        narrow = generate_trace(get_profile("gzip"), 4000, seed=9).stats()
        wide = generate_trace(get_profile("crafty"), 4000, seed=9).stats()
        assert narrow.narrow_result_fraction > wide.narrow_result_fraction

    def test_byte_load_knob(self):
        heavy = get_profile("gzip")
        light = get_profile("vpr")
        heavy_stats = generate_trace(heavy, 4000, seed=2).stats()
        light_stats = generate_trace(light, 4000, seed=2).stats()
        heavy_frac = heavy_stats.byte_load_count / max(1, heavy_stats.load_count)
        light_frac = light_stats.byte_load_count / max(1, light_stats.load_count)
        assert heavy_frac > light_frac

    def test_fp_fraction_follows_mix(self):
        fp_heavy = generate_trace(get_profile("eon"), 4000, seed=2).stats()
        fp_light = generate_trace(get_profile("gzip"), 4000, seed=2).stats()
        assert fp_heavy.class_fraction(OpClass.FP) >= fp_light.class_fraction(OpClass.FP)

    def test_extreme_narrow_profile(self):
        profile = get_profile("gcc").scaled(narrow_data_fraction=0.99,
                                            pointer_arith_fraction=0.0,
                                            width_locality=0.99)
        stats = generate_trace(profile, 3000, seed=1).stats()
        wide_profile = get_profile("gcc").scaled(narrow_data_fraction=0.01,
                                                 width_locality=0.99)
        wide_stats = generate_trace(wide_profile, 3000, seed=1).stats()
        assert stats.narrow_result_fraction > wide_stats.narrow_result_fraction + 0.1

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_any_seed_generates_valid_trace(self, seed):
        trace = generate_trace(get_profile("mcf"), 400, seed=seed)
        trace.validate()
        assert len(trace) >= 400
