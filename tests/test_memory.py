"""Tests for the cache, trace cache and memory hierarchy substrates."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import AccessResult, Cache, CacheConfig
from repro.memory.hierarchy import MemoryConfig, MemoryHierarchy
from repro.memory.tracecache import TraceCache, TraceCacheConfig


def small_cache(sets=4, ways=2, line=16):
    return Cache(CacheConfig(name="T", size_bytes=sets * ways * line,
                             associativity=ways, line_bytes=line, hit_latency=3))


class TestCacheConfig:
    def test_num_sets(self):
        config = CacheConfig(name="DL0", size_bytes=32 * 1024, associativity=8,
                             line_bytes=64)
        assert config.num_sets == 64

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(name="bad", size_bytes=1000, associativity=3, line_bytes=64)
        with pytest.raises(ValueError):
            CacheConfig(name="bad", size_bytes=0, associativity=1, line_bytes=64)

    def test_invalid_ports(self):
        with pytest.raises(ValueError):
            CacheConfig(name="bad", size_bytes=1024, associativity=2, line_bytes=64,
                        ports=0)


class TestCache:
    def test_first_access_misses(self):
        cache = small_cache()
        assert not cache.access(0x1000).hit

    def test_second_access_hits(self):
        cache = small_cache()
        cache.access(0x1000)
        assert cache.access(0x1000).hit

    def test_same_line_hits(self):
        cache = small_cache(line=16)
        cache.access(0x1000)
        assert cache.access(0x100F).hit
        assert not cache.access(0x1010).hit

    def test_lru_eviction(self):
        cache = small_cache(sets=1, ways=2, line=16)
        cache.access(0x000)  # A
        cache.access(0x010)  # B
        cache.access(0x000)  # touch A -> B is LRU
        result = cache.access(0x020)  # C evicts B
        assert result.evicted_tag is not None
        assert cache.probe(0x000)
        assert not cache.probe(0x010)

    def test_probe_does_not_allocate(self):
        cache = small_cache()
        assert not cache.probe(0x40)
        assert cache.stats.accesses == 0

    def test_invalidate(self):
        cache = small_cache()
        cache.access(0x80)
        assert cache.invalidate(0x80)
        assert not cache.probe(0x80)
        assert not cache.invalidate(0x80)

    def test_stats(self):
        cache = small_cache()
        cache.access(0x0)
        cache.access(0x0)
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_reset(self):
        cache = small_cache()
        cache.access(0x0)
        cache.reset()
        assert cache.occupancy() == 0
        assert cache.stats.accesses == 0

    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_bounded_by_capacity(self, addresses):
        cache = small_cache(sets=4, ways=2)
        for addr in addresses:
            cache.access(addr)
        assert cache.occupancy() <= 4 * 2

    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_immediate_rereference_always_hits(self, addresses):
        cache = small_cache()
        for addr in addresses:
            cache.access(addr)
            assert cache.access(addr).hit


class TestTraceCache:
    def test_default_geometry_matches_table1(self):
        config = TraceCacheConfig()
        assert config.capacity_uops == 32 * 1024
        assert config.associativity == 4

    def test_miss_then_hit(self):
        tc = TraceCache()
        assert tc.fetch(0x400000) > 0
        assert tc.fetch(0x400000) == 0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TraceCacheConfig(capacity_uops=0)
        with pytest.raises(ValueError):
            TraceCacheConfig(miss_penalty=-1)

    def test_reset(self):
        tc = TraceCache()
        tc.fetch(0x1234)
        tc.reset()
        assert tc.fetch(0x1234) > 0


class TestHierarchy:
    def test_dl0_hit_latency(self):
        hier = MemoryHierarchy()
        hier.load_latency(0x1000)            # cold miss
        assert hier.load_latency(0x1000) == hier.config.dl0.hit_latency

    def test_cold_miss_goes_to_memory(self):
        hier = MemoryHierarchy()
        latency = hier.load_latency(0x5000)
        expected = (hier.config.dl0.hit_latency + hier.config.ul1.hit_latency
                    + hier.config.main_memory_latency)
        assert latency == expected

    def test_ul1_hit_after_dl0_eviction(self):
        hier = MemoryHierarchy()
        base = 0x100000
        hier.load_latency(base)
        # Walk enough distinct lines mapping to the same DL0 set to evict it,
        # while staying resident in the much larger UL1.
        dl0 = hier.config.dl0
        stride = dl0.num_sets * dl0.line_bytes
        for i in range(1, dl0.associativity + 2):
            hier.load_latency(base + i * stride)
        latency = hier.load_latency(base)
        assert latency == dl0.hit_latency + hier.config.ul1.hit_latency

    def test_store_allocates(self):
        hier = MemoryHierarchy()
        hier.store(0x2000)
        assert hier.load_latency(0x2000) == hier.config.dl0.hit_latency

    def test_stats(self):
        hier = MemoryHierarchy()
        hier.load_latency(0x0)
        hier.store(0x0)
        assert hier.stats.loads == 1
        assert hier.stats.stores == 1
        assert 0.0 <= hier.stats.dl0_hit_rate <= 1.0

    def test_table1_defaults(self):
        config = MemoryConfig()
        assert config.dl0.size_bytes == 32 * 1024
        assert config.dl0.hit_latency == 3
        assert config.ul1.size_bytes == 4 * 1024 * 1024
        assert config.ul1.hit_latency == 13
        assert config.main_memory_latency == 450

    def test_reset(self):
        hier = MemoryHierarchy()
        hier.load_latency(0x0)
        hier.reset()
        assert hier.stats.loads == 0
        assert not hier.dl0.probe(0x0)
