"""Integration tests for the helper-cluster timing simulator.

These run small synthetic traces through the full machine and check
architectural and accounting invariants rather than absolute cycle counts.
"""

import pytest

from repro.core.config import baseline_config, helper_cluster_config
from repro.core.steering import make_policy
from repro.pipeline.clocking import ClockDomain
from repro.sim.baseline import baseline_pair, simulate_baseline
from repro.sim.metrics import speedup
from repro.sim.simulator import HelperClusterSimulator, simulate
from repro.trace.profiles import get_profile
from repro.trace.synthetic import generate_trace


class TestBaselineRun:
    def test_all_uops_commit(self, tiny_trace):
        result = simulate_baseline(tiny_trace)
        assert result.committed_uops == len(tiny_trace)

    def test_no_helper_activity(self, tiny_trace):
        result = simulate_baseline(tiny_trace)
        assert result.helper_uops == 0
        assert result.copies == 0
        assert result.recoveries == 0
        assert result.helper_fraction == 0.0

    def test_positive_ipc(self, tiny_trace):
        result = simulate_baseline(tiny_trace)
        assert 0.0 < result.ipc <= 6.0
        assert result.slow_cycles > 0
        assert result.fast_cycles == result.slow_cycles  # ratio 1 in baseline

    def test_deterministic(self, tiny_trace):
        a = simulate_baseline(tiny_trace)
        b = simulate_baseline(tiny_trace)
        assert a.slow_cycles == b.slow_cycles
        assert a.committed_uops == b.committed_uops


class TestHelperRun:
    @pytest.mark.parametrize("policy_name", ["n888", "n888_br_lr", "n888_br_lr_cr",
                                             "n888_br_lr_cr_cp", "ir", "ir_nodest"])
    def test_all_uops_commit_under_every_policy(self, tiny_trace, policy_name):
        result = simulate(tiny_trace, config=helper_cluster_config(),
                          policy=make_policy(policy_name))
        assert result.committed_uops == len(tiny_trace)
        assert result.policy == policy_name

    def test_helper_gets_work(self, tiny_trace):
        result = simulate(tiny_trace, config=helper_cluster_config(),
                          policy=make_policy("ir"))
        assert result.helper_uops > 0
        assert 0.0 < result.helper_fraction < 1.0

    def test_fast_cycles_track_clock_ratio(self, tiny_trace):
        result = simulate(tiny_trace, config=helper_cluster_config(),
                          policy=make_policy("n888"))
        assert result.fast_cycles == pytest.approx(result.slow_cycles * 2)

    def test_prediction_breakdown_sums(self, tiny_trace):
        result = simulate(tiny_trace, config=helper_cluster_config(),
                          policy=make_policy("n888_br_lr_cr"))
        breakdown = result.prediction
        assert breakdown.total > 0
        assert breakdown.correct + breakdown.non_fatal + breakdown.fatal == breakdown.total
        assert breakdown.accuracy > 0.6

    def test_fatal_mispredictions_trigger_recoveries(self, bzip2_trace_small):
        result = simulate(bzip2_trace_small, config=helper_cluster_config(),
                          policy=make_policy("n888_br_lr_cr"))
        # fatal rate and recoveries must be consistent: every recovery stems
        # from a narrow-steered misprediction (width or carry).
        assert result.recoveries >= 0
        if result.prediction.fatal > 0:
            assert result.recoveries > 0

    def test_copies_only_with_helper(self, tiny_trace):
        helper = simulate(tiny_trace, config=helper_cluster_config(),
                          policy=make_policy("n888"))
        assert helper.copies >= 0
        assert helper.copy_fraction < 1.0

    def test_steer_reasons_cover_all_commits(self, tiny_trace):
        result = simulate(tiny_trace, config=helper_cluster_config(),
                          policy=make_policy("ir"))
        assert sum(result.steer_reasons.values()) == result.committed_uops

    def test_activity_counts_filled(self, tiny_trace):
        result = simulate(tiny_trace, config=helper_cluster_config(),
                          policy=make_policy("n888"))
        activity = result.activity
        assert activity.fetched_uops >= len(tiny_trace)
        assert activity.committed_uops == len(tiny_trace)
        assert activity.wide_cycles > 0
        assert activity.dl0_accesses > 0
        assert activity.helper_present

    def test_cluster_activity_per_cluster(self, tiny_trace):
        result = simulate(tiny_trace, config=helper_cluster_config(),
                          policy=make_policy("n888"))
        assert set(result.cluster_activity) == {"wide", "narrow"}
        wide = result.cluster_activity["wide"]
        narrow = result.cluster_activity["narrow"]
        # The aggregate view is exactly the per-cluster counts folded down.
        activity = result.activity
        assert activity.wide_alu_ops == wide.alu_ops
        assert activity.narrow_alu_ops == narrow.alu_ops
        assert activity.wide_scheduler_ops == wide.scheduler_ops
        assert activity.narrow_regfile_accesses == narrow.regfile_accesses
        # A 2x helper clocks twice per host cycle over the same run.
        assert wide.cycles == activity.wide_cycles
        assert narrow.cycles == activity.fast_cycles
        assert narrow.clock_ratio == 2 and narrow.datapath_width == 8

    def test_energy_attached_by_default(self, tiny_trace):
        result = simulate(tiny_trace, config=helper_cluster_config(),
                          policy=make_policy("n888"))
        assert result.has_energy
        assert set(result.power) == {"wide", "narrow"}
        assert result.energy > 0 and result.ed2 > 0
        assert result.shared_power.per_structure["frontend"] > 0
        assert result.selector == "least_loaded"

    def test_energy_accounting_can_be_disabled(self, tiny_trace):
        from repro.power.wattch import PowerConfig

        off = simulate(tiny_trace, config=helper_cluster_config(),
                       policy=make_policy("n888"),
                       power=PowerConfig(enabled=False))
        on = simulate(tiny_trace, config=helper_cluster_config(),
                      policy=make_policy("n888"))
        assert not off.has_energy and off.energy == 0.0
        # Disabling energy never changes timing.
        assert off.slow_cycles == on.slow_cycles
        assert off.committed_uops == on.committed_uops

    def test_imbalance_rates_bounded(self, tiny_trace):
        result = simulate(tiny_trace, config=helper_cluster_config(),
                          policy=make_policy("n888_br_lr_cr"))
        assert 0.0 <= result.wide_to_narrow_imbalance <= 1.0
        assert 0.0 <= result.narrow_to_wide_imbalance <= 1.0

    def test_simulator_object_reusable_state(self, tiny_trace):
        sim = HelperClusterSimulator(tiny_trace, config=helper_cluster_config(),
                                     policy=make_policy("n888"))
        result = sim.run()
        assert result.committed_uops == len(tiny_trace)
        assert sim.rob.is_empty()
        assert len(sim.wide.issue_queue) == 0
        assert len(sim.narrow.issue_queue) == 0


class TestSpeedupRelations:
    def test_helper_cluster_helps_narrow_heavy_workload(self):
        trace = generate_trace(get_profile("gzip"), 4000, seed=3)
        base, helper, gain = baseline_pair(trace, "n888_br_lr_cr")
        assert base.committed_uops == helper.committed_uops
        assert gain > 0.0

    def test_speedup_helper_function(self, tiny_trace):
        base = simulate_baseline(tiny_trace)
        helper = simulate(tiny_trace, config=helper_cluster_config(),
                          policy=make_policy("n888"))
        gain = speedup(base, helper)
        assert gain == pytest.approx(base.slow_cycles / helper.slow_cycles - 1.0)

    def test_speedup_requires_positive_cycles(self, tiny_trace):
        base = simulate_baseline(tiny_trace)
        broken = simulate_baseline(tiny_trace)
        broken.slow_cycles = 0
        with pytest.raises(ValueError):
            speedup(base, broken)

    def test_clock_ratio_one_is_not_faster_than_two(self):
        """With the same steering, a 2x-clocked helper should never lose to a
        1x symmetric helper on a narrow-friendly trace."""
        trace = generate_trace(get_profile("gzip"), 3000, seed=5)
        fast = simulate(trace, config=helper_cluster_config(clock_ratio=2),
                        policy=make_policy("n888_br_lr_cr"))
        slow = simulate(trace, config=helper_cluster_config(clock_ratio=1),
                        policy=make_policy("n888_br_lr_cr"))
        assert fast.slow_cycles <= slow.slow_cycles * 1.05

    def test_baseline_equals_helper_disabled(self, tiny_trace):
        mono = simulate_baseline(tiny_trace)
        disabled = simulate(tiny_trace, config=baseline_config(),
                            policy=make_policy("ir"))
        # With the helper disabled the steering policy cannot send anything to
        # the narrow cluster, so cycle counts must match the baseline.
        assert disabled.helper_uops == 0
        assert disabled.slow_cycles == mono.slow_cycles


class TestLoadReplication:
    def test_lr_reduces_or_keeps_copies(self):
        trace = generate_trace(get_profile("gzip"), 4000, seed=9)
        without = simulate(trace, config=helper_cluster_config(),
                           policy=make_policy("n888_br"))
        with_lr = simulate(trace, config=helper_cluster_config(),
                           policy=make_policy("n888_br_lr"))
        assert with_lr.copies <= without.copies * 1.10
        assert with_lr.replicated_loads >= 0


class TestRecoveryBehaviour:
    def test_confidence_gate_reduces_fatal_rate(self):
        """§3.2: the 2-bit confidence estimator reduces the fraction of
        mispredictions that require recovery."""
        trace = generate_trace(get_profile("parser"), 4000, seed=13)
        gated = simulate(trace, config=helper_cluster_config(use_confidence=True),
                         policy=make_policy("n888"))
        ungated = simulate(trace, config=helper_cluster_config(use_confidence=False),
                           policy=make_policy("n888"))
        assert gated.prediction.fatal_rate <= ungated.prediction.fatal_rate
        assert gated.recoveries <= ungated.recoveries

    def test_recovered_uops_still_commit(self):
        trace = generate_trace(get_profile("parser"), 3000, seed=17)
        result = simulate(trace, config=helper_cluster_config(use_confidence=False),
                          policy=make_policy("n888_br_lr_cr"))
        assert result.committed_uops == len(trace)
        assert result.recoveries > 0
        assert result.squashed_uops >= result.recoveries
