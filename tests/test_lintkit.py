"""Lintkit rule battery: every rule fires on a bad fixture, stays quiet
on a good one, and the suppression / fingerprint workflows round-trip.

Fixture trees are written under tmp_path with a narrow LintConfig so each
rule is exercised in isolation; the final test runs the full shipped
configuration over this repository and is the tier-1 "lint exits 0" gate.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path
from textwrap import dedent

import pytest

from repro.lintkit import (LintConfig, LintRunner, build_rules,
                           default_config, render_json, render_text,
                           report_to_dict, run_lint, update_fingerprints)
from repro.lintkit.rules.determinism import DeterminismRule
from repro.lintkit.rules.cache_key import CacheKeyCompletenessRule
from repro.lintkit.rules.live_view import LiveViewContractRule
from repro.lintkit.rules.hot_loop import HotLoopHygieneRule
from repro.lintkit.rules.versioning import (VersionDisciplineRule,
                                            read_simulator_version)
from repro.lintkit.suppressions import parse_line


def write_tree(root: Path, files: dict) -> None:
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(dedent(text), encoding="utf-8")


def run_rules(config: LintConfig, rules):
    return LintRunner(config, rules).run()


def codes_at(report, relpath):
    return [(f.rule, f.line) for f in report.unsuppressed
            if f.path == relpath]


# --------------------------------------------------------------- REP001

class TestDeterminism:
    def config(self, root: Path) -> LintConfig:
        return LintConfig(project_root=root, src_roots=["src"],
                          determinism_scopes=["src/sim"])

    def test_fires_on_ambient_entropy(self, tmp_path):
        write_tree(tmp_path, {"src/sim/bad.py": """\
            import random, time, os

            def roll():
                a = random.random()
                b = time.time()
                c = os.urandom(4)
                return a, b, c
        """})
        report = run_rules(self.config(tmp_path), [DeterminismRule()])
        lines = [f.line for f in report.unsuppressed]
        assert lines == [4, 5, 6]
        assert all(f.rule == "REP001" for f in report.unsuppressed)

    def test_fires_on_set_iteration(self, tmp_path):
        write_tree(tmp_path, {"src/sim/bad.py": """\
            def f(items):
                seen = set(items)
                for x in seen:
                    print(x)
                return [y for y in {1, 2, 3}]
        """})
        report = run_rules(self.config(tmp_path), [DeterminismRule()])
        assert [f.line for f in report.unsuppressed] == [3, 5]

    def test_fires_on_self_attribute_set(self, tmp_path):
        write_tree(tmp_path, {"src/sim/bad.py": """\
            class Tracker:
                def __init__(self):
                    self.seen = set()

                def drain(self):
                    for x in self.seen:
                        print(x)
        """})
        report = run_rules(self.config(tmp_path), [DeterminismRule()])
        assert [f.line for f in report.unsuppressed] == [6]

    def test_quiet_on_sanctioned_patterns(self, tmp_path):
        write_tree(tmp_path, {"src/sim/good.py": """\
            import random

            def f(items, seed):
                rng = random.Random(seed)
                seen = set(items)
                total = sum(seen)
                ordered = sorted(x * 2 for x in seen)
                if 3 in seen and len(seen) > 1:
                    return rng.randrange(total)
                return ordered
        """})
        report = run_rules(self.config(tmp_path), [DeterminismRule()])
        assert report.unsuppressed == []

    def test_out_of_scope_files_ignored(self, tmp_path):
        write_tree(tmp_path, {"src/other/wild.py": """\
            import time

            def now():
                return time.time()
        """})
        report = run_rules(self.config(tmp_path), [DeterminismRule()])
        assert report.unsuppressed == []


# --------------------------------------------------------------- REP002

class TestCacheKeyCompleteness:
    def config(self, root: Path, exemptions=None) -> LintConfig:
        return LintConfig(
            project_root=root, src_roots=["src"],
            key_dict_classes=[("src/conf.py", "Spec")],
            key_dict_exemptions=exemptions or {})

    def test_fires_on_missing_field(self, tmp_path):
        write_tree(tmp_path, {"src/conf.py": """\
            from dataclasses import dataclass

            @dataclass
            class Spec:
                width: int = 8
                ratio: int = 2
                label: str = "x"

                def to_key_dict(self):
                    return {"width": self.width, "ratio": self.ratio}
        """})
        report = run_rules(self.config(tmp_path),
                           [CacheKeyCompletenessRule()])
        assert len(report.unsuppressed) == 1
        finding = report.unsuppressed[0]
        assert finding.rule == "REP002"
        assert "Spec.label" in finding.message

    def test_fires_on_missing_to_key_dict(self, tmp_path):
        write_tree(tmp_path, {"src/conf.py": """\
            from dataclasses import dataclass

            @dataclass
            class Spec:
                width: int = 8
        """})
        report = run_rules(self.config(tmp_path),
                           [CacheKeyCompletenessRule()])
        assert len(report.unsuppressed) == 1
        assert "no to_key_dict" in report.unsuppressed[0].message

    def test_asdict_covers_everything(self, tmp_path):
        write_tree(tmp_path, {"src/conf.py": """\
            from dataclasses import asdict, dataclass

            @dataclass
            class Spec:
                width: int = 8
                label: str = "x"

                def to_key_dict(self):
                    return asdict(self)
        """})
        report = run_rules(self.config(tmp_path),
                           [CacheKeyCompletenessRule()])
        assert report.unsuppressed == []

    def test_exemption_table_honoured(self, tmp_path):
        write_tree(tmp_path, {"src/conf.py": """\
            from dataclasses import dataclass

            @dataclass
            class Spec:
                width: int = 8
                label: str = "x"

                def to_key_dict(self):
                    return {"width": self.width}
        """})
        exempt = {"Spec": {"label": "presentation only"}}
        report = run_rules(self.config(tmp_path, exempt),
                           [CacheKeyCompletenessRule()])
        assert report.unsuppressed == []

    def test_stale_exemption_fires(self, tmp_path):
        write_tree(tmp_path, {"src/conf.py": """\
            from dataclasses import dataclass

            @dataclass
            class Spec:
                width: int = 8

                def to_key_dict(self):
                    return {"width": self.width}
        """})
        exempt = {"Spec": {"gone": "field was deleted"}}
        report = run_rules(self.config(tmp_path, exempt),
                           [CacheKeyCompletenessRule()])
        assert len(report.unsuppressed) == 1
        assert "stale exemption" in report.unsuppressed[0].message


# --------------------------------------------------------------- REP003

class TestLiveViewContract:
    def test_fires_on_private_cross_object_read(self, tmp_path):
        write_tree(tmp_path, {"src/sim/hot.py": """\
            def sample(queue):
                queue._occupancy += 1
                return queue.entries
        """})
        config = LintConfig(project_root=tmp_path, src_roots=["src"],
                            live_view_modules=["src/sim/hot.py"])
        report = run_rules(config, [LiveViewContractRule()])
        assert codes_at(report, "src/sim/hot.py") == [("REP003", 2)]

    def test_self_and_dunder_reads_allowed(self, tmp_path):
        write_tree(tmp_path, {"src/sim/hot.py": """\
            class Sim:
                def step(self, queue):
                    self._cycle += 1
                    return queue.entries, queue.__class__
        """})
        config = LintConfig(project_root=tmp_path, src_roots=["src"],
                            live_view_modules=["src/sim/hot.py"])
        report = run_rules(config, [LiveViewContractRule()])
        assert report.unsuppressed == []

    def test_missing_alias_fires(self, tmp_path):
        write_tree(tmp_path, {"src/pipeline/queue.py": """\
            class IssueQueue:
                def __init__(self):
                    self.entries = {}
        """})
        config = LintConfig(
            project_root=tmp_path, src_roots=["src"],
            live_view_aliases={"IssueQueue": (
                "src/pipeline/queue.py", ["entries", "ready_entries"])})
        report = run_rules(config, [LiveViewContractRule()])
        assert len(report.unsuppressed) == 1
        assert "ready_entries" in report.unsuppressed[0].message

    def test_published_alias_satisfies(self, tmp_path):
        write_tree(tmp_path, {"src/pipeline/queue.py": """\
            class IssueQueue:
                def __init__(self):
                    self.entries = {}
                    self.ready_entries = {}
        """})
        config = LintConfig(
            project_root=tmp_path, src_roots=["src"],
            live_view_aliases={"IssueQueue": (
                "src/pipeline/queue.py", ["entries", "ready_entries"])})
        report = run_rules(config, [LiveViewContractRule()])
        assert report.unsuppressed == []


# --------------------------------------------------------------- REP004

HOT_BAD = """\
    class Sim:
        # hot-path
        def step(self, uops):
            ready = [u for u in uops if u.ready]
            label = f"step {len(ready)}"
            merged = ready + [None]
            return label, merged

        def recover(self, uops):
            return [u for u in uops if not u.squashed]
"""


class TestHotLoopHygiene:
    def config(self, root: Path) -> LintConfig:
        return LintConfig(project_root=root, src_roots=["src"],
                          hot_loop_files=["src/sim/hot.py"])

    def test_fires_inside_tagged_function_only(self, tmp_path):
        write_tree(tmp_path, {"src/sim/hot.py": HOT_BAD})
        report = run_rules(self.config(tmp_path), [HotLoopHygieneRule()])
        lines = [f.line for f in report.unsuppressed]
        # comprehension, f-string and list + inside step(); the untagged
        # recover() comprehension is legal.
        assert lines == [4, 5, 6]
        assert all(f.rule == "REP004" for f in report.unsuppressed)

    def test_untagged_file_fires_tag_guard(self, tmp_path):
        write_tree(tmp_path, {"src/sim/hot.py": """\
            def cold(xs):
                return [x for x in xs]
        """})
        report = run_rules(self.config(tmp_path), [HotLoopHygieneRule()])
        assert len(report.unsuppressed) == 1
        assert "no # hot-path function tags" in report.unsuppressed[0].message

    def test_clean_tagged_function_quiet(self, tmp_path):
        write_tree(tmp_path, {"src/sim/hot.py": """\
            class Sim:
                # hot-path
                def step(self, uops):
                    count = 0
                    for u in uops:
                        if u.ready:
                            count += 1
                    return count
        """})
        report = run_rules(self.config(tmp_path), [HotLoopHygieneRule()])
        assert report.unsuppressed == []


# ---------------------------------------------------------- suppressions

class TestSuppressions:
    def test_parse_line_forms(self):
        assert parse_line("x = 1  # lint: disable=REP001(seeded)") == {
            "REP001": "seeded"}
        assert parse_line(
            "y  # lint: disable=REP001(a), REP004(b c)") == {
                "REP001": "a", "REP004": "b c"}
        assert parse_line("z  # lint: disable=REP001") == {"REP001": ""}
        assert parse_line("plain line") == {}

    def test_suppression_with_reason_silences(self, tmp_path):
        write_tree(tmp_path, {"src/sim/hot.py": """\
            # hot-path
            def step(uops):
                return [u for u in uops]  # lint: disable=REP004(bench-only fixture)
        """})
        config = LintConfig(project_root=tmp_path, src_roots=["src"],
                            hot_loop_files=["src/sim/hot.py"])
        report = run_rules(config, [HotLoopHygieneRule()])
        assert report.unsuppressed == []
        assert len(report.suppressed) == 1
        assert report.suppressed[0].suppression_reason == \
            "bench-only fixture"
        assert report.ok

    def test_reasonless_suppression_does_not_silence(self, tmp_path):
        write_tree(tmp_path, {"src/sim/hot.py": """\
            # hot-path
            def step(uops):
                return [u for u in uops]  # lint: disable=REP004
        """})
        config = LintConfig(project_root=tmp_path, src_roots=["src"],
                            hot_loop_files=["src/sim/hot.py"])
        report = run_rules(config, [HotLoopHygieneRule()])
        assert len(report.unsuppressed) == 1
        assert "suppression ignored" in report.unsuppressed[0].message

    def test_wrong_rule_suppression_does_not_silence(self, tmp_path):
        write_tree(tmp_path, {"src/sim/hot.py": """\
            # hot-path
            def step(uops):
                return [u for u in uops]  # lint: disable=REP001(not this rule)
        """})
        config = LintConfig(project_root=tmp_path, src_roots=["src"],
                            hot_loop_files=["src/sim/hot.py"])
        report = run_rules(config, [HotLoopHygieneRule()])
        assert len(report.unsuppressed) == 1


# --------------------------------------------------------------- REP005

VERSION_MODULE = """\
    SIMULATOR_VERSION = "{version}"
"""

SEMANTIC_MODULE = """\
    def semantics():
        return {value}
"""


class TestVersionDiscipline:
    def config(self, root: Path) -> LintConfig:
        return LintConfig(
            project_root=root, src_roots=["src"],
            semantic_module_globs=["src/mod/*.py"],
            fingerprint_path=root / "fingerprints.json",
            version_source=("src/mod/version.py", "SIMULATOR_VERSION"))

    def seed(self, root: Path, version="1", value="1") -> LintConfig:
        write_tree(root, {
            "src/mod/version.py": VERSION_MODULE.format(version=version),
            "src/mod/semantics.py": SEMANTIC_MODULE.format(value=value),
        })
        return self.config(root)

    def test_missing_fingerprints_fire(self, tmp_path):
        config = self.seed(tmp_path)
        report = run_rules(config, [VersionDisciplineRule()])
        assert len(report.unsuppressed) == 1
        assert "fingerprint file missing" in report.unsuppressed[0].message

    def test_bless_then_clean(self, tmp_path):
        config = self.seed(tmp_path)
        path = update_fingerprints(config)
        blessed = json.loads(path.read_text())
        assert blessed["simulator_version"] == "1"
        assert "src/mod/semantics.py" in blessed["files"]
        report = run_rules(config, [VersionDisciplineRule()])
        assert report.unsuppressed == []

    def test_semantic_change_without_bump_fires(self, tmp_path):
        config = self.seed(tmp_path)
        update_fingerprints(config)
        write_tree(tmp_path, {
            "src/mod/semantics.py": SEMANTIC_MODULE.format(value="2")})
        report = run_rules(config, [VersionDisciplineRule()])
        assert len(report.unsuppressed) == 1
        finding = report.unsuppressed[0]
        assert finding.path == "src/mod/semantics.py"
        assert "without a SIMULATOR_VERSION bump" in finding.message

    def test_new_semantic_module_fires(self, tmp_path):
        config = self.seed(tmp_path)
        update_fingerprints(config)
        write_tree(tmp_path, {
            "src/mod/extra.py": SEMANTIC_MODULE.format(value="3")})
        report = run_rules(config, [VersionDisciplineRule()])
        assert [f.path for f in report.unsuppressed] == ["src/mod/extra.py"]

    def test_version_bump_requires_rebless(self, tmp_path):
        config = self.seed(tmp_path)
        update_fingerprints(config)
        write_tree(tmp_path, {
            "src/mod/version.py": VERSION_MODULE.format(version="2"),
            "src/mod/semantics.py": SEMANTIC_MODULE.format(value="2"),
        })
        report = run_rules(config, [VersionDisciplineRule()])
        assert len(report.unsuppressed) == 1
        assert "blessed under" in report.unsuppressed[0].message
        # Re-blessing under the new version settles the contract.
        update_fingerprints(config)
        report = run_rules(config, [VersionDisciplineRule()])
        assert report.unsuppressed == []

    def test_reads_real_simulator_version(self):
        version = read_simulator_version(default_config())
        from repro.sim.cache import SIMULATOR_VERSION
        assert version == SIMULATOR_VERSION


# ------------------------------------------------------------ reporting

class TestReporting:
    def report(self, tmp_path):
        write_tree(tmp_path, {"src/sim/hot.py": HOT_BAD})
        config = LintConfig(project_root=tmp_path, src_roots=["src"],
                            hot_loop_files=["src/sim/hot.py"])
        return run_rules(config, [HotLoopHygieneRule()])

    def test_text_report(self, tmp_path):
        report = self.report(tmp_path)
        text = render_text(report)
        assert "src/sim/hot.py:4:" in text
        assert "REP004" in text
        assert "3 finding(s)" in text

    def test_json_report_shape(self, tmp_path):
        report = self.report(tmp_path)
        data = json.loads(render_json(report))
        assert data["format"] == 1
        assert data["summary"]["findings"] == 3
        assert data["summary"]["ok"] is False
        assert data["rules"][0]["code"] == "REP004"
        assert {f["rule"] for f in data["findings"]} == {"REP004"}

    def test_rule_filter_unknown_code_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            build_rules(["REP999"])

    def test_rule_filter_selects(self):
        rules = build_rules(["REP001", "REP004"])
        assert sorted(rule.code for rule in rules) == ["REP001", "REP004"]


# ----------------------------------------------------- shipped-tree gate

class TestShippedTree:
    def test_all_five_rules_registered(self):
        rules = build_rules()
        assert sorted(rule.code for rule in rules) == [
            "REP001", "REP002", "REP003", "REP004", "REP005"]

    def test_repo_lints_clean(self):
        """The tier-1 lint gate: the shipped tree has no unsuppressed
        findings under the full default configuration (the CI lint job
        enforces the same through the CLI)."""
        report = run_lint()
        assert len(report.rules) == 5
        messages = [f"{f.location()}: {f.rule}: {f.message}"
                    for f in report.unsuppressed]
        assert messages == []
        # The deliberate raise-path suppression in the scheduler stays
        # visible in the report, reason attached.
        assert any(f.rule == "REP004" and f.suppression_reason
                   for f in report.suppressed)

    def test_cli_lint_exits_zero(self):
        root = default_config().project_root
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint", "--format", "json"],
            cwd=root, capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0, proc.stdout + proc.stderr
        data = json.loads(proc.stdout)
        assert data["summary"]["ok"] is True
        assert data["summary"]["rules_active"] == 5
