"""Cache-key contract conformance for every ``to_key_dict()`` dataclass.

The result cache's stale-key hazard class (see DESIGN.md): any dataclass
that feeds the cache key must (a) serialise to *canonical JSON* losslessly —
``canonical_text`` of its key dict must round-trip through ``json.loads``
unchanged, so the key depends on field values rather than repr formatting —
and (b) change the key whenever **any** field changes, nested fields
included.  This module asserts both properties generically for every
key-contributing dataclass (``MachineConfig``, ``PolicySpec``,
``PowerConfig``, plus the nested ``ClusterSpec``/``Topology``), by
perturbing each field in turn and checking the canonical text moves.

Deliberate exemptions (fields that must *not* reach the key) are listed in
``KEY_EXEMPT`` so the contract is explicit in both directions.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core.config import (
    ClusterSpec,
    MachineConfig,
    Topology,
    helper_cluster_config,
    helper_topology,
)
from repro.core.steering import PolicySpec, Scheme, policy_spec
from repro.power.wattch import PowerConfig
from repro.sim.cache import canonical_text

#: Fields deliberately excluded from the cache key, per owning class.
#: ``PolicySpec.in_ladder`` is a presentation flag: it orders the ladder
#: tables and must not fragment the cache.
KEY_EXEMPT = {
    PolicySpec: {"in_ladder"},
}

#: The key-contributing instances under test.
SUBJECTS = [
    pytest.param(helper_cluster_config(), id="MachineConfig"),
    pytest.param(policy_spec("ir_wa"), id="PolicySpec"),
    pytest.param(PowerConfig(), id="PowerConfig"),
    pytest.param(helper_topology().helpers[0], id="ClusterSpec"),
    pytest.param(helper_topology(), id="Topology"),
]


def _candidates(value):
    """Type-appropriate replacement candidates for one field value."""
    if isinstance(value, bool):
        return [not value]
    if isinstance(value, int):
        # Several options: validators constrain some fields (powers of two,
        # 2-bit ranges, >= 1 minima); the first constructible one wins.
        return [value * 2, value + 1, value - 1, 1]
    if isinstance(value, float):
        return [value * 2 + 1.0]
    if isinstance(value, str):
        return [value + "_probe"]
    if isinstance(value, frozenset):
        return [frozenset(set(value) ^ {Scheme.N888})]
    if isinstance(value, tuple):
        if value and dataclasses.is_dataclass(value[0]):
            # Topology.clusters: mutate the last cluster spec.
            mutated = _mutate_any_field(value[-1])
            return [] if mutated is None else [value[:-1] + (mutated,)]
        return [(("probe_knob", 1),)]
    if dataclasses.is_dataclass(value):
        mutated = _mutate_any_field(value)
        return [] if mutated is None else [mutated]
    if value is None:
        # Optional[Topology] on MachineConfig.
        return [helper_topology(helpers=2)]
    return []


def _mutate_field(obj, field_name):
    """A copy of ``obj`` with ``field_name`` changed, or None if impossible."""
    for candidate in _candidates(getattr(obj, field_name)):
        try:
            mutated = dataclasses.replace(obj, **{field_name: candidate})
        except (ValueError, TypeError):
            continue  # rejected by a validator; try the next candidate
        if mutated != obj:
            return mutated
    return None


def _mutate_any_field(obj):
    for field in dataclasses.fields(obj):
        mutated = _mutate_field(obj, field.name)
        if mutated is not None:
            return mutated
    return None


class TestKeyDictConformance:
    @pytest.mark.parametrize("subject", SUBJECTS)
    def test_round_trips_through_canonical_json(self, subject):
        """Canonical JSON is lossless: the key hashes values, not reprs."""
        key_dict = subject.to_key_dict()
        assert json.loads(canonical_text(key_dict)) == key_dict

    @pytest.mark.parametrize("subject", SUBJECTS)
    def test_canonical_text_is_deterministic(self, subject):
        rebuilt = dataclasses.replace(subject)
        assert canonical_text(rebuilt.to_key_dict()) == \
            canonical_text(subject.to_key_dict())

    @pytest.mark.parametrize("subject", SUBJECTS)
    def test_every_field_change_changes_the_key(self, subject):
        base_text = canonical_text(subject.to_key_dict())
        exempt = KEY_EXEMPT.get(type(subject), set())
        for field in dataclasses.fields(subject):
            mutated = _mutate_field(subject, field.name)
            assert mutated is not None, (
                f"{type(subject).__name__}.{field.name}: no constructible "
                f"perturbation — extend _candidates() for this field type")
            mutated_text = canonical_text(mutated.to_key_dict())
            if field.name in exempt:
                assert mutated_text == base_text, (
                    f"{type(subject).__name__}.{field.name} is documented as "
                    f"key-exempt but changed the key")
            else:
                assert mutated_text != base_text, (
                    f"{type(subject).__name__}.{field.name} changed without "
                    f"changing the cache key — stale-hit hazard")


class TestPowerConfigReachesEngineKey:
    """The engine folds PowerConfig into result keys (end-to-end check)."""

    def test_power_config_changes_job_key(self):
        from repro.sim.engine import SweepEngine, SweepJob

        job = SweepJob("gcc", "ir", 1000, 2006)
        default = SweepEngine(config=helper_cluster_config())
        tweaked = SweepEngine(config=helper_cluster_config(),
                              power=PowerConfig(alu_access=11.0))
        assert default.key_for(job) != tweaked.key_for(job)

    def test_job_carried_power_overrides_engine_power(self):
        from repro.sim.engine import SweepEngine, SweepJob

        engine = SweepEngine(config=helper_cluster_config())
        plain = SweepJob("gcc", "ir", 1000, 2006)
        carried = SweepJob("gcc", "ir", 1000, 2006,
                           power=PowerConfig(enabled=False))
        assert engine.key_for(plain) != engine.key_for(carried)

    def test_baseline_jobs_key_on_power_too(self):
        # Baseline energies feed ED² comparisons, so a coefficient change
        # must also invalidate cached baselines.
        from repro.sim.engine import SweepEngine, SweepJob

        job = SweepJob("gcc", "baseline", 1000, 2006)
        default = SweepEngine(config=helper_cluster_config())
        tweaked = SweepEngine(config=helper_cluster_config(),
                              power=PowerConfig(wide_clock_per_cycle=13.0))
        assert default.key_for(job) != tweaked.key_for(job)
