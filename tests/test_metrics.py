"""Tests for the SimulationResult metrics record and derived quantities."""

import pytest

from repro.power.wattch import ActivityCounts, PowerBreakdown
from repro.sim.metrics import (
    PredictionBreakdown,
    SimulationResult,
    ed2_improvement,
    speedup,
)


def result(**overrides) -> SimulationResult:
    base = SimulationResult(benchmark="toy", policy="n888", committed_uops=1000,
                            slow_cycles=2000.0, fast_cycles=4000, helper_uops=200,
                            copies=100)
    for key, value in overrides.items():
        setattr(base, key, value)
    return base


class TestPredictionBreakdown:
    def test_rates(self):
        breakdown = PredictionBreakdown(correct=90, non_fatal=8, fatal=2)
        assert breakdown.total == 100
        assert breakdown.accuracy == pytest.approx(0.9)
        assert breakdown.fatal_rate == pytest.approx(0.02)
        assert breakdown.non_fatal_rate == pytest.approx(0.08)

    def test_empty(self):
        breakdown = PredictionBreakdown()
        assert breakdown.accuracy == 0.0
        assert breakdown.fatal_rate == 0.0


class TestSimulationResult:
    def test_ipc(self):
        assert result().ipc == pytest.approx(0.5)

    def test_ipc_zero_cycles(self):
        assert result(slow_cycles=0.0).ipc == 0.0

    def test_fractions(self):
        r = result()
        assert r.helper_fraction == pytest.approx(0.2)
        assert r.copy_fraction == pytest.approx(0.1)

    def test_fractions_no_commits(self):
        r = result(committed_uops=0)
        assert r.helper_fraction == 0.0
        assert r.copy_fraction == 0.0

    def test_recovery_rate(self):
        assert result(recoveries=10).recovery_rate == pytest.approx(0.01)

    def test_summary_keys(self):
        summary = result().summary()
        assert summary["benchmark"] == "toy"
        assert summary["policy"] == "n888"
        assert set(summary) >= {"ipc", "helper_fraction", "copy_fraction",
                                "prediction_accuracy", "fatal_rate"}

    def test_default_activity_attached(self):
        assert isinstance(result().activity, ActivityCounts)

    def test_energy_defaults_to_zero_without_power(self):
        r = result()
        assert not r.has_energy
        assert r.energy == 0.0
        assert r.ed == 0.0 and r.ed2 == 0.0

    def test_energy_sums_clusters_and_shared(self):
        r = result(power={"wide": PowerBreakdown({"clock": 100.0}),
                          "narrow": PowerBreakdown({"clock": 20.0})},
                   shared_power=PowerBreakdown({"frontend": 30.0}))
        assert r.has_energy
        assert r.energy == pytest.approx(150.0)
        assert r.ed == pytest.approx(150.0 * 2000.0)
        assert r.ed2 == pytest.approx(150.0 * 2000.0 ** 2)
        assert r.cluster_energy("narrow") == pytest.approx(20.0)

    def test_summary_includes_energy_and_selector(self):
        summary = result(selector="width_aware").summary()
        assert summary["selector"] == "width_aware"
        assert set(summary) >= {"energy", "ed2"}


class TestEd2Improvement:
    def _with_energy(self, energy, cycles):
        return result(power={"wide": PowerBreakdown({"clock": energy})},
                      slow_cycles=cycles)

    def test_positive_when_candidate_more_efficient(self):
        base = self._with_energy(100.0, 1000.0)
        candidate = self._with_energy(105.0, 900.0)
        assert ed2_improvement(base, candidate) > 0

    def test_matches_definition(self):
        base = self._with_energy(100.0, 1000.0)
        candidate = self._with_energy(50.0, 1000.0)
        assert ed2_improvement(base, candidate) == pytest.approx(0.5)

    def test_rejects_energyless_baseline(self):
        with pytest.raises(ValueError):
            ed2_improvement(result(), result())


class TestSpeedup:
    def test_positive_when_faster(self):
        base = result(slow_cycles=2000.0)
        fast = result(slow_cycles=1000.0)
        assert speedup(base, fast) == pytest.approx(1.0)

    def test_negative_when_slower(self):
        base = result(slow_cycles=1000.0)
        slow = result(slow_cycles=1250.0)
        assert speedup(base, slow) == pytest.approx(-0.2)

    def test_zero_when_equal(self):
        assert speedup(result(), result()) == pytest.approx(0.0)

    def test_rejects_zero_cycles(self):
        with pytest.raises(ValueError):
            speedup(result(slow_cycles=0.0), result())
        with pytest.raises(ValueError):
            speedup(result(), result(slow_cycles=0.0))
