"""Tests for the data-width aware steering policies (§3.2-§3.7)."""

import pytest

from repro.core.config import helper_cluster_config
from repro.core.copy_engine import CopyEngine
from repro.core.imbalance import ImbalanceMonitor, ImbalanceSample
from repro.core.predictors import WidthPredictor
from repro.core.splitting import InstructionSplitter
from repro.core.steering import (
    POLICY_LADDER,
    BaselineSteering,
    DataWidthSteering,
    Scheme,
    SteeringContext,
    make_policy,
)
from repro.isa.opcodes import Opcode
from repro.isa.registers import ArchReg
from repro.isa.uop import UopBuilder
from repro.pipeline.clocking import ClockDomain
from repro.pipeline.frontend import FetchedUop
from repro.pipeline.rename import RenameTable


@pytest.fixture()
def ctx():
    config = helper_cluster_config()
    return SteeringContext(
        config=config,
        width_predictor=WidthPredictor(),
        rename=RenameTable(),
        imbalance=ImbalanceMonitor(queue_size=config.scheduler.queue_size),
        copy_engine=CopyEngine(),
        splitter=InstructionSplitter(),
    )


def fetched(uop, seq=0, resolved=True):
    return FetchedUop(uop=uop, seq=seq, target_resolved_in_frontend=resolved)


def train_narrow(predictor, pc, times=4, narrow=True):
    for _ in range(times):
        predictor.update(pc, narrow)


def alu_uop(pc=0x400000, dest=ArchReg.EAX, srcs=(ArchReg.EBX,), imm=None):
    return UopBuilder().make(Opcode.ADD, pc=pc, srcs=srcs, dest=dest, imm=imm)


class TestPolicyLadder:
    def test_ladder_names(self):
        assert list(POLICY_LADDER)[0] == "baseline"
        assert "ir" in POLICY_LADDER and "ir_nodest" in POLICY_LADDER

    def test_ladder_is_cumulative(self):
        previous = frozenset()
        for name, schemes in POLICY_LADDER.items():
            assert previous <= schemes
            previous = schemes

    def test_make_policy(self):
        assert isinstance(make_policy("baseline"), BaselineSteering)
        policy = make_policy("ir")
        assert isinstance(policy, DataWidthSteering)
        assert Scheme.IR in policy.schemes

    def test_make_policy_unknown(self):
        with pytest.raises(KeyError):
            make_policy("bogus")

    def test_make_policy_unknown_lists_policies_and_schemes(self):
        with pytest.raises(KeyError) as excinfo:
            make_policy("bogus")
        message = str(excinfo.value)
        for name in POLICY_LADDER:
            assert name in message
        for scheme in Scheme:
            assert scheme.name.lower() in message

    def test_make_policy_ad_hoc_scheme_combo(self):
        policy = make_policy("n888+cr")
        assert isinstance(policy, DataWidthSteering)
        assert policy.schemes == frozenset({Scheme.N888, Scheme.CR})
        assert policy.name == "n888+cr"

    def test_ladder_policies_resolve_through_registry(self):
        from repro.core.steering import policy_registry

        assert policy_registry.ladder_names() == list(POLICY_LADDER)
        for name, schemes in POLICY_LADDER.items():
            assert policy_registry.get(name).schemes == schemes


class TestBaselineSteering:
    def test_everything_goes_wide(self, ctx):
        policy = BaselineSteering()
        decision = policy.steer(fetched(alu_uop()), ctx)
        assert decision.domain is ClockDomain.WIDE
        assert policy.stats.to_wide == 1


class TestN888(object):
    def test_narrow_sources_and_confident_narrow_result_go_narrow(self, ctx):
        policy = make_policy("n888")
        uop = alu_uop(pc=0x400000)
        train_narrow(ctx.width_predictor, uop.pc)
        decision = policy.steer(fetched(uop), ctx)
        assert decision.to_helper
        assert decision.predicted_narrow
        assert decision.reason == "n888"

    def test_low_confidence_keeps_wide(self, ctx):
        policy = make_policy("n888")
        uop = alu_uop(pc=0x400100)
        # single update: predicted narrow but not confident yet
        ctx.width_predictor.update(uop.pc, True)
        decision = policy.steer(fetched(uop), ctx)
        assert not decision.to_helper
        assert policy.stats.rejected_low_confidence >= 1

    def test_wide_source_blocks_narrow_steer(self, ctx):
        policy = make_policy("n888")
        uop = alu_uop(pc=0x400200, srcs=(ArchReg.ESI,))
        train_narrow(ctx.width_predictor, uop.pc)
        # the width table says ESI holds a wide value
        ctx.rename.allocate(ArchReg.ESI, 1, ClockDomain.WIDE, predicted_narrow=False)
        decision = policy.steer(fetched(uop), ctx)
        assert not decision.to_helper

    def test_wide_immediate_blocks_narrow_steer(self, ctx):
        policy = make_policy("n888")
        uop = alu_uop(pc=0x400300, imm=0x10000)
        train_narrow(ctx.width_predictor, uop.pc)
        assert not policy.steer(fetched(uop), ctx).to_helper

    def test_wide_result_prediction_blocks(self, ctx):
        policy = make_policy("n888")
        uop = alu_uop(pc=0x400400)
        train_narrow(ctx.width_predictor, uop.pc, narrow=False)
        assert not policy.steer(fetched(uop), ctx).to_helper

    def test_fp_and_muldiv_never_narrow(self, ctx):
        policy = make_policy("ir")
        fp = UopBuilder().make(Opcode.FADD, pc=0x1000, dest=ArchReg.TMP3)
        mul = UopBuilder().make(Opcode.MUL, pc=0x1004, dest=ArchReg.EAX,
                                srcs=(ArchReg.EAX,))
        assert not policy.steer(fetched(fp), ctx).to_helper
        assert not policy.steer(fetched(mul), ctx).to_helper

    def test_branches_not_steered_by_n888(self, ctx):
        policy = make_policy("n888")
        br = UopBuilder().branch(pc=0x400500, conditional=True)
        decision = policy.steer(fetched(br), ctx)
        assert not decision.to_helper

    def test_helper_disabled_goes_wide(self, ctx):
        ctx.config = helper_cluster_config().with_helper(enabled=False)
        policy = make_policy("n888")
        uop = alu_uop()
        train_narrow(ctx.width_predictor, uop.pc)
        assert not policy.steer(fetched(uop), ctx).to_helper


class TestBR:
    def test_branch_follows_narrow_flag_producer(self, ctx):
        policy = make_policy("n888_br")
        ctx.rename.allocate(ArchReg.FLAGS, 5, ClockDomain.NARROW, True)
        br = UopBuilder().branch(pc=0x400600, conditional=True)
        decision = policy.steer(fetched(br, resolved=True), ctx)
        assert decision.to_helper and decision.via_br

    def test_branch_with_wide_flag_producer_stays_wide(self, ctx):
        policy = make_policy("n888_br")
        ctx.rename.allocate(ArchReg.FLAGS, 5, ClockDomain.WIDE, True)
        br = UopBuilder().branch(pc=0x400604, conditional=True)
        assert not policy.steer(fetched(br), ctx).to_helper

    def test_branch_needs_frontend_resolved_target(self, ctx):
        policy = make_policy("n888_br")
        ctx.rename.allocate(ArchReg.FLAGS, 5, ClockDomain.NARROW, True)
        br = UopBuilder().branch(pc=0x400608, conditional=True)
        assert not policy.steer(fetched(br, resolved=False), ctx).to_helper

    def test_unconditional_branch_stays_wide(self, ctx):
        policy = make_policy("n888_br")
        jmp = UopBuilder().branch(pc=0x40060C, conditional=False)
        assert not policy.steer(fetched(jmp), ctx).to_helper


class TestLR:
    def test_narrow_predicted_load_replicates(self, ctx):
        policy = make_policy("n888_br_lr")
        load = UopBuilder().load(ArchReg.EAX, ArchReg.ESI, ArchReg.ECX, pc=0x400700)
        train_narrow(ctx.width_predictor, load.pc)
        ctx.rename.allocate(ArchReg.ESI, 1, ClockDomain.WIDE, predicted_narrow=False)
        decision = policy.steer(fetched(load), ctx)
        assert decision.replicate_load

    def test_wide_predicted_load_not_replicated(self, ctx):
        policy = make_policy("n888_br_lr")
        load = UopBuilder().load(ArchReg.EAX, ArchReg.ESI, ArchReg.ECX, pc=0x400704)
        train_narrow(ctx.width_predictor, load.pc, narrow=False)
        assert not policy.steer(fetched(load), ctx).replicate_load

    def test_lr_disabled_in_plain_n888(self, ctx):
        policy = make_policy("n888")
        load = UopBuilder().load(ArchReg.EAX, ArchReg.ESI, ArchReg.ECX, pc=0x400708)
        train_narrow(ctx.width_predictor, load.pc)
        assert not policy.steer(fetched(load), ctx).replicate_load
        assert not policy.uses_load_replication


class TestCR:
    def _carry_trained_load(self, ctx, pc=0x400800):
        load = UopBuilder().make(Opcode.LOAD, pc=pc, srcs=(ArchReg.ESI,),
                                 dest=ArchReg.EAX, imm=0x10)
        # Wide base in the width table, wide result prediction, carry-safe bit
        ctx.rename.allocate(ArchReg.ESI, 1, ClockDomain.WIDE, predicted_narrow=False)
        for _ in range(4):
            ctx.width_predictor.update(pc, False)          # result wide
            ctx.width_predictor.update_carry(pc, True)     # carry never propagates
        return load

    def test_carry_safe_load_steered_narrow(self, ctx):
        policy = make_policy("n888_br_lr_cr")
        load = self._carry_trained_load(ctx)
        decision = policy.steer(fetched(load), ctx)
        assert decision.to_helper and decision.via_cr

    def test_cr_disabled_without_scheme(self, ctx):
        policy = make_policy("n888_br_lr")
        load = self._carry_trained_load(ctx, pc=0x400810)
        assert not policy.steer(fetched(load), ctx).to_helper

    def test_untrained_carry_bit_stays_wide(self, ctx):
        policy = make_policy("n888_br_lr_cr")
        load = UopBuilder().make(Opcode.LOAD, pc=0x400820, srcs=(ArchReg.ESI,),
                                 dest=ArchReg.EAX, imm=0x10)
        ctx.rename.allocate(ArchReg.ESI, 1, ClockDomain.WIDE, predicted_narrow=False)
        assert not policy.steer(fetched(load), ctx).to_helper

    def test_memory_cr_requires_immediate_offset(self, ctx):
        policy = make_policy("n888_br_lr_cr")
        pc = 0x400830
        load = UopBuilder().load(ArchReg.EAX, ArchReg.ESI, ArchReg.ECX, pc=pc)
        ctx.rename.allocate(ArchReg.ESI, 1, ClockDomain.WIDE, predicted_narrow=False)
        for _ in range(4):
            ctx.width_predictor.update(pc, False)
            ctx.width_predictor.update_carry(pc, True)
        assert not policy.steer(fetched(load), ctx).to_helper


class TestIR:
    def _congest_wide(self, ctx):
        ctx.imbalance.record(ImbalanceSample(
            fast_cycle=0, wide_ready_blocked=3, narrow_ready_blocked=0,
            wide_free_slots=0, narrow_free_slots=3,
            wide_occupancy=30, narrow_occupancy=2))

    def test_split_when_wide_congested(self, ctx):
        policy = make_policy("ir")
        self._congest_wide(ctx)
        uop = alu_uop(pc=0x400900, srcs=(ArchReg.ESI, ArchReg.EDI))
        ctx.rename.allocate(ArchReg.ESI, 1, ClockDomain.WIDE, False)
        ctx.rename.allocate(ArchReg.EDI, 2, ClockDomain.WIDE, False)
        decision = policy.steer(fetched(uop), ctx)
        assert decision.split and decision.to_helper

    def test_no_split_without_imbalance(self, ctx):
        policy = make_policy("ir")
        uop = alu_uop(pc=0x400904, srcs=(ArchReg.ESI, ArchReg.EDI))
        ctx.rename.allocate(ArchReg.ESI, 1, ClockDomain.WIDE, False)
        decision = policy.steer(fetched(uop), ctx)
        assert not decision.split

    def test_ir_nodest_only_splits_destless_ops(self, ctx):
        policy = make_policy("ir_nodest")
        self._congest_wide(ctx)
        add = alu_uop(pc=0x400908, srcs=(ArchReg.ESI, ArchReg.EDI))
        ctx.rename.allocate(ArchReg.ESI, 1, ClockDomain.WIDE, False)
        ctx.rename.allocate(ArchReg.EDI, 2, ClockDomain.WIDE, False)
        assert not policy.steer(fetched(add), ctx).split
        cmp_uop = UopBuilder().make(Opcode.CMP, pc=0x40090C,
                                    srcs=(ArchReg.ESI, ArchReg.EDI))
        assert policy.steer(fetched(cmp_uop), ctx).split

    def test_overload_steers_back_to_wide(self, ctx):
        policy = make_policy("ir")
        ctx.imbalance.record(ImbalanceSample(
            fast_cycle=0, wide_ready_blocked=0, narrow_ready_blocked=3,
            wide_free_slots=3, narrow_free_slots=0,
            wide_occupancy=2, narrow_occupancy=30))
        uop = alu_uop(pc=0x400910)
        train_narrow(ctx.width_predictor, uop.pc)
        decision = policy.steer(fetched(uop), ctx)
        assert not decision.to_helper
        assert policy.stats.rebalanced_to_wide >= 1


class TestStats:
    def test_narrow_fraction_accounting(self, ctx):
        policy = make_policy("n888")
        uop = alu_uop(pc=0x400A00)
        train_narrow(ctx.width_predictor, uop.pc)
        policy.steer(fetched(uop), ctx)
        policy.steer(fetched(UopBuilder().make(Opcode.MUL, pc=0x400A04,
                                               dest=ArchReg.EAX, srcs=(ArchReg.EAX,))), ctx)
        assert policy.stats.steered == 2
        assert policy.stats.to_narrow == 1
        assert policy.stats.narrow_fraction == 0.5

    def test_policy_reset(self, ctx):
        policy = make_policy("n888")
        policy.steer(fetched(alu_uop()), ctx)
        policy.reset()
        assert policy.stats.steered == 0
