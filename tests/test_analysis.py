"""Tests for the trace characterisation analyses (Figures 1, 11, 13)."""

import pytest

from repro.analysis.carry import analyze_carry, carry_fractions, carry_not_propagated
from repro.analysis.distance import producer_consumer_distance
from repro.analysis.narrowness import (
    analyze_narrowness,
    narrow_dependence_fraction,
    operand_narrowness_breakdown,
)
from repro.isa.opcodes import Opcode
from repro.isa.registers import ArchReg
from repro.isa.uop import UopBuilder
from repro.trace.profiles import get_profile
from repro.trace.synthetic import generate_trace
from repro.trace.trace import Trace


def _chain_trace():
    """producer -> consumer chain with known values for exact assertions."""
    builder = UopBuilder()
    trace = Trace(name="chain")
    producer = builder.alu(Opcode.MOVI, ArchReg.EAX, (), imm=5).with_values([], 5)
    consumer = builder.alu(Opcode.ADD, ArchReg.EBX, (ArchReg.EAX,)).with_values([5], 6)
    consumer.producer_uids = (producer.uid,)
    wide_prod = builder.alu(Opcode.MOVI, ArchReg.ECX, (), imm=0x10000).with_values([], 0x10000)
    wide_cons = builder.alu(Opcode.ADD, ArchReg.EDX, (ArchReg.ECX,)).with_values([0x10000], 0x10001)
    wide_cons.producer_uids = (wide_prod.uid,)
    trace.uops.extend([producer, consumer, wide_prod, wide_cons])
    return trace


class TestNarrowness:
    def test_exact_fraction_on_chain(self):
        report = analyze_narrowness(_chain_trace())
        # Two register operands observed: one narrow producer, one wide.
        assert report.total_register_operands == 2
        assert report.narrow_dependent_operands == 1
        assert report.narrow_dependence_fraction == 0.5

    def test_fraction_in_unit_range(self, gcc_trace_small):
        fraction = narrow_dependence_fraction(gcc_trace_small)
        assert 0.0 < fraction < 1.0

    def test_figure1_ordering_gzip_vs_crafty(self):
        gzip = narrow_dependence_fraction(generate_trace(get_profile("gzip"), 5000, seed=4))
        crafty = narrow_dependence_fraction(generate_trace(get_profile("crafty"), 5000, seed=4))
        assert gzip > crafty

    def test_substantial_narrow_dependence(self, gcc_trace_small):
        # The paper's Figure 1 average is ~65%; the synthetic gcc profile
        # should land in the same broad band.
        assert narrow_dependence_fraction(gcc_trace_small) > 0.4

    def test_alu_breakdown_fractions_sum_below_one(self, gcc_trace_small):
        breakdown = operand_narrowness_breakdown(gcc_trace_small)
        assert set(breakdown) == {"one_narrow_operand", "two_narrow_wide_result",
                                  "two_narrow_narrow_result"}
        assert 0.0 <= sum(breakdown.values()) <= 1.0
        assert breakdown["two_narrow_narrow_result"] > 0

    def test_empty_trace(self):
        report = analyze_narrowness(Trace(name="empty"))
        assert report.narrow_dependence_fraction == 0.0


class TestCarry:
    def test_carry_not_propagated_helper(self):
        assert carry_not_propagated(0x1C, 0xFFFC4A02)
        assert not carry_not_propagated(0xFF, 0x000000FF)

    def test_exact_counts_on_hand_built_trace(self):
        builder = UopBuilder()
        trace = Trace(name="carry")
        ld = builder.load(ArchReg.EAX, ArchReg.ESI, ArchReg.ECX, addr=0x08000010)
        ld = ld.with_values([0x08000000, 0x10], 0x5)
        no_carry_add = builder.alu(Opcode.ADD, ArchReg.EBX, (ArchReg.ESI, ArchReg.ECX))
        no_carry_add = no_carry_add.with_values([0x08000000, 0x10], 0x08000010)
        carry_add = builder.alu(Opcode.ADD, ArchReg.EBX, (ArchReg.ESI, ArchReg.ECX))
        carry_add = carry_add.with_values([0x080000F0, 0x20], 0x08000110)
        trace.uops.extend([ld, no_carry_add, carry_add])
        report = analyze_carry(trace)
        assert report.load_candidates == 1 and report.load_no_carry == 1
        assert report.arith_candidates == 2 and report.arith_no_carry == 1

    def test_fractions_in_range(self, gcc_trace_small):
        fractions = carry_fractions(gcc_trace_small)
        assert 0.0 <= fractions["arith"] <= 1.0
        assert 0.0 <= fractions["load"] <= 1.0

    def test_loads_have_high_no_carry_fraction(self, gcc_trace_small):
        # Figure 11: loads (base + small displacement) mostly do not carry.
        report = analyze_carry(gcc_trace_small)
        assert report.load_candidates > 0
        assert report.load_fraction > 0.5

    def test_narrow_result_arith_excluded(self):
        builder = UopBuilder()
        trace = Trace(name="x")
        narrow_result = builder.alu(Opcode.ADD, ArchReg.EAX, (ArchReg.EBX, ArchReg.ECX))
        narrow_result = narrow_result.with_values([0x10000, 0x3], 0x7)
        trace.uops.append(narrow_result)
        assert analyze_carry(trace).arith_candidates == 0


class TestDistance:
    def test_exact_distance_on_chain(self):
        report = producer_consumer_distance(_chain_trace())
        assert report.pairs == 2
        assert report.mean_distance == 1.0

    def test_first_consumer_only_flag(self):
        builder = UopBuilder()
        trace = Trace(name="fanout")
        producer = builder.alu(Opcode.MOVI, ArchReg.EAX, (), imm=1).with_values([], 1)
        c1 = builder.alu(Opcode.ADD, ArchReg.EBX, (ArchReg.EAX,)).with_values([1], 2)
        c1.producer_uids = (producer.uid,)
        c2 = builder.alu(Opcode.ADD, ArchReg.ECX, (ArchReg.EAX,)).with_values([1], 2)
        c2.producer_uids = (producer.uid,)
        trace.uops.extend([producer, c1, c2])
        first_only = producer_consumer_distance(trace, first_consumer_only=True)
        all_pairs = producer_consumer_distance(trace, first_consumer_only=False)
        assert first_only.pairs == 1
        assert all_pairs.pairs == 2

    def test_mean_distance_matches_figure13_band(self, gcc_trace_small):
        # Figure 13 reports averages of a few uops across SPEC Int.
        report = producer_consumer_distance(gcc_trace_small)
        assert 1.0 <= report.mean_distance <= 12.0

    def test_fraction_within(self, gcc_trace_small):
        report = producer_consumer_distance(gcc_trace_small)
        assert report.fraction_within(report.max_bucket) == pytest.approx(1.0)
        assert 0.0 <= report.fraction_within(2) <= 1.0

    def test_empty_trace(self):
        report = producer_consumer_distance(Trace(name="empty"))
        assert report.pairs == 0
        assert report.mean_distance == 0.0
        assert report.fraction_within(5) == 0.0
