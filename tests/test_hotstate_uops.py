"""Property tests for the per-uop SoA dispatch state.

Covers the :class:`repro.sim.hotstate.WaiterPool` round-trips (insert /
wake-walk / squash), column growth across in-place array reallocations —
including the *physical length equals logical capacity* invariant the
compiled kernels rely on to derive their bounds from buffer sizes — and
recovery squash draining every waiter slot by the end of a run.
"""

from __future__ import annotations

import random

import pytest

from repro.core.copy_engine import CopyEngine
from repro.fuzz.generate import generate_case
from repro.pipeline.scheduler import IssueQueue
from repro.sim.hotstate import DynTable, WaiterPool, resolve_backend
from repro.sim.simulator import HelperClusterSimulator


def _walk_value(pool: WaiterPool, value_uid: int, domain: int) -> list:
    """Drain one (value_uid, domain) waiter list the way wakeup does."""
    lane = value_uid * pool.num_domains + domain
    node = pool.value_heads[lane]
    pool.value_heads[lane] = -1
    pool.value_tails[lane] = -1
    woken = []
    while node >= 0:
        nxt = pool.node_next[node]
        woken.append(pool.node_dyn[node])
        pool.free_node(node)
        node = nxt
    return woken


def _free_list_len(pool: WaiterPool) -> int:
    node = pool.ctrl[0]
    n = 0
    while node >= 0:
        n += 1
        node = pool.node_next[node]
    return n


class TestWaiterPoolRoundTrip:
    def test_fifo_order_per_lane(self):
        pool = WaiterPool(num_domains=3)
        rng = random.Random(0xD15)
        expected: dict = {}
        for dyn_id in range(500):
            uid = rng.randrange(40)
            domain = rng.randrange(3)
            pool.append_value(uid, domain, dyn_id)
            expected.setdefault((uid, domain), []).append(dyn_id)
        for (uid, domain), dyns in expected.items():
            assert _walk_value(pool, uid, domain) == dyns
        assert pool.stranded_nodes() == 0

    def test_interleaved_insert_wake_keeps_node_accounting(self):
        pool = WaiterPool(num_domains=2)
        rng = random.Random(0xACC)
        live: dict = {}
        for step in range(2000):
            if live and rng.random() < 0.4:
                key = rng.choice(list(live))
                assert _walk_value(pool, *key) == live.pop(key)
            else:
                uid = rng.randrange(64)
                domain = rng.randrange(2)
                live.setdefault((uid, domain), []).append(step)
                pool.append_value(uid, domain, step)
            # every node slot is either live or on the free list
            assert pool.stranded_nodes() + _free_list_len(pool) == len(pool.node_dyn)
        for key, dyns in list(live.items()):
            assert _walk_value(pool, *key) == dyns
        assert pool.stranded_nodes() == 0
        assert _free_list_len(pool) == len(pool.node_dyn)

    def test_chunk_chains_round_trip(self):
        pool = WaiterPool(num_domains=1)
        for prev in (3, 2000):          # second key forces ensure_chunk growth
            pool.append_chunk(prev, prev + 1)
            pool.append_chunk(prev, prev + 2)
            node = pool.chunk_heads[prev]
            walked = []
            while node >= 0:
                walked.append(pool.node_dyn[node])
                nxt = pool.node_next[node]
                pool.free_node(node)
                node = nxt
            pool.chunk_heads[prev] = -1
            pool.chunk_tails[prev] = -1
            assert walked == [prev + 1, prev + 2]
        assert pool.stranded_nodes() == 0

    def test_reserve_prevents_node_growth(self):
        pool = WaiterPool(num_domains=2)
        pool.reserve(32)
        slots_before = len(pool.node_dyn)
        assert _free_list_len(pool) == 32
        for i in range(32):
            pool.append_value(i % 5, i % 2, i)
        assert len(pool.node_dyn) == slots_before


class TestColumnGrowth:
    """Growing a column must keep object identity (the compiled kernels
    re-acquire buffers per call but hold the *objects* across calls) and
    must keep the physical element count equal to the logical capacity —
    the kernels derive lane bounds from ``len(buffer)``, so slack elements
    would be read as real (garbage) state."""

    def test_dyn_table_columns_track_cap(self):
        table = DynTable()
        cols = ("seq", "domain", "flags", "value_uid", "pnarrow",
                "kindcol", "opcode", "unit")
        before = {c: id(getattr(table, c)) for c in cols}
        table.ensure(5000)
        assert table.cap >= 5001
        for c in cols:
            col = getattr(table, c)
            assert id(col) == before[c], c
            assert len(col) == table.cap, c

    def test_waiter_pool_lanes_track_caps(self):
        pool = WaiterPool(num_domains=3)
        heads, tails = id(pool.value_heads), id(pool.value_tails)
        pool.ensure_value(9000)
        assert id(pool.value_heads) == heads
        assert id(pool.value_tails) == tails
        assert len(pool.value_heads) == pool.vcap * pool.num_domains
        assert len(pool.value_tails) == pool.vcap * pool.num_domains
        pool.ensure_chunk(9000)
        assert len(pool.chunk_heads) == pool.ccap
        assert len(pool.chunk_tails) == pool.ccap

    def test_copy_engine_lanes_track_cap(self):
        engine = CopyEngine(num_domains=3)
        ids = {n: id(getattr(engine, n)) for n in
               ("avail_lanes", "avail_order_lanes", "avail_count_lanes",
                "pending_lanes", "prefetched_lanes", "copied_lanes")}
        engine.note_produced(7000, 1, ready_cycle=10)
        D = engine.num_domains
        cap = engine.cap_uids
        assert cap >= 7001
        for name, ident in ids.items():
            assert id(getattr(engine, name)) == ident, name
        assert len(engine.avail_lanes) == cap * D
        assert len(engine.avail_order_lanes) == cap * D
        assert len(engine.avail_count_lanes) == cap
        assert len(engine.pending_lanes) == cap * D
        assert len(engine.prefetched_lanes) == cap * D
        assert len(engine.copied_lanes) == cap
        assert engine.availability(7000, 1) == 10

    def test_issue_queue_columns_track_capacity_across_forced_growth(self):
        iq = IssueQueue(size=4, issue_width=2)
        ids = {n: id(getattr(iq, n)) for n in
               ("agekey", "remaining", "mem_flags", "uids")}
        for uid in range(11):           # > 2x architectural size: two growths
            iq.insert_uop(uid, uid, 0, False, None, force=True)
        assert iq._capacity > 4
        for name, ident in ids.items():
            col = getattr(iq, name)
            assert id(col) == ident, name
            assert len(col) == iq._capacity, name
        assert len(iq.payloads) == iq._capacity
        # drain preserves age order over the grown storage
        drained = [e.uid for e in iq.drain()]
        assert drained == sorted(drained)


@pytest.mark.parametrize("backend", ["python", "compiled"])
class TestRecoveryDrainsWaiters:
    def test_squash_leaves_no_stranded_waiter_slots(self, backend):
        if backend == "compiled" and resolve_backend("compiled")[1] is None:
            pytest.skip("compiled backend unavailable")
        # fuzz seed 319 produces dozens of width-misprediction recoveries
        # across three helper clusters (dense squash + redispatch traffic)
        case = generate_case(319)
        sim = HelperClusterSimulator(case.build_trace(),
                                     config=case.machine_config(),
                                     policy=case.policy.build(),
                                     reference_loop=False, backend=backend)
        result = sim.run()
        assert result.recoveries > 0
        assert sim.hot.waiters.stranded_nodes() == 0
        assert sim.copy_engine.prefetched_active == 0
