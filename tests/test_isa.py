"""Tests for registers, opcodes (semantics) and the MicroOp record."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.opcodes import (
    OPCODE_INFO,
    FunctionalUnit,
    OpClass,
    Opcode,
    execute,
    opcode_info,
)
from repro.isa.registers import ArchReg, Flags, GPR_REGS, NUM_ARCH_REGS, RegisterFile
from repro.isa.uop import MicroOp, UopBuilder
from repro.isa.values import WIDE_MASK, truncate

u32 = st.integers(min_value=0, max_value=WIDE_MASK)


class TestRegisters:
    def test_gpr_set(self):
        assert len(GPR_REGS) == 8
        assert ArchReg.EAX in GPR_REGS
        assert ArchReg.FLAGS not in GPR_REGS

    def test_register_kind_predicates(self):
        assert ArchReg.EAX.is_gpr
        assert ArchReg.TMP1.is_temp
        assert ArchReg.FLAGS.is_flags
        assert not ArchReg.FLAGS.is_gpr

    def test_register_file_read_default_zero(self):
        rf = RegisterFile()
        assert rf.read(ArchReg.EBX) == 0

    def test_register_file_write_read(self):
        rf = RegisterFile()
        rf.write(ArchReg.EAX, 0x1234)
        assert rf.read(ArchReg.EAX) == 0x1234

    def test_register_file_truncates(self):
        rf = RegisterFile()
        rf.write(ArchReg.EAX, 1 << 35)
        assert rf.read(ArchReg.EAX) == truncate(1 << 35)

    def test_snapshot_restore(self):
        rf = RegisterFile()
        rf.write(ArchReg.EAX, 1)
        snap = rf.snapshot()
        rf.write(ArchReg.EAX, 2)
        rf.restore(snap)
        assert rf.read(ArchReg.EAX) == 1

    def test_reset(self):
        rf = RegisterFile()
        rf.write(ArchReg.ECX, 9)
        rf.reset()
        assert rf.read(ArchReg.ECX) == 0

    def test_len(self):
        assert len(RegisterFile()) == NUM_ARCH_REGS

    def test_flags_pack_unpack(self):
        value = Flags.pack(cf=True, zf=False, sf=True, of=False)
        unpacked = Flags.unpack(value)
        assert unpacked == {"cf": True, "zf": False, "sf": True, "of": False}


class TestOpcodeInfo:
    def test_every_opcode_has_info(self):
        for opcode in Opcode:
            assert opcode in OPCODE_INFO

    def test_latencies_positive(self):
        for info in OPCODE_INFO.values():
            assert info.latency >= 1

    def test_branch_reads_flags(self):
        assert opcode_info(Opcode.BR_COND).reads_flags
        assert not opcode_info(Opcode.BR_UNCOND).reads_flags

    def test_memory_classification(self):
        assert opcode_info(Opcode.LOAD).is_memory
        assert opcode_info(Opcode.STORE).is_memory
        assert not opcode_info(Opcode.ADD).is_memory

    def test_mul_div_not_splittable(self):
        assert not opcode_info(Opcode.MUL).splittable
        assert not opcode_info(Opcode.DIV).splittable

    def test_add_is_splittable_and_cr_eligible(self):
        info = opcode_info(Opcode.ADD)
        assert info.splittable and info.cr_eligible

    def test_mul_div_not_cr_eligible(self):
        # §3.5: the carry signal cannot flag mispredictions for mul/div.
        assert not opcode_info(Opcode.MUL).cr_eligible
        assert not opcode_info(Opcode.IDIV).cr_eligible

    def test_fp_uses_fpu(self):
        assert opcode_info(Opcode.FADD).unit is FunctionalUnit.FPU


class TestSemantics:
    def test_add(self):
        result, flags = execute(Opcode.ADD, 2, 3)
        assert result == 5
        assert not (flags & Flags.ZF)

    def test_add_wraps_and_sets_carry(self):
        result, flags = execute(Opcode.ADD, 0xFFFFFFFF, 1)
        assert result == 0
        assert flags & Flags.CF
        assert flags & Flags.ZF

    def test_sub_borrow(self):
        result, flags = execute(Opcode.SUB, 1, 2)
        assert result == truncate(-1)
        assert flags & Flags.CF

    def test_cmp_is_sub_flags_only(self):
        _, flags_cmp = execute(Opcode.CMP, 7, 7)
        assert flags_cmp & Flags.ZF

    def test_logic(self):
        assert execute(Opcode.AND, 0xF0, 0x3C)[0] == 0x30
        assert execute(Opcode.OR, 0xF0, 0x0F)[0] == 0xFF
        assert execute(Opcode.XOR, 0xFF, 0x0F)[0] == 0xF0

    def test_shifts(self):
        assert execute(Opcode.SHL, 1, 4)[0] == 16
        assert execute(Opcode.SHR, 16, 4)[0] == 1
        assert execute(Opcode.SAR, truncate(-16), 2)[0] == truncate(-4)

    def test_mov_and_movi(self):
        assert execute(Opcode.MOV, 42, 0)[0] == 42
        assert execute(Opcode.MOVI, 0, 99)[0] == 99

    def test_inc_dec_neg_not(self):
        assert execute(Opcode.INC, 5, 0)[0] == 6
        assert execute(Opcode.DEC, 5, 0)[0] == 4
        assert execute(Opcode.NEG, 5, 0)[0] == truncate(-5)
        assert execute(Opcode.NOT, 0, 0)[0] == WIDE_MASK

    def test_mul_div(self):
        assert execute(Opcode.MUL, 6, 7)[0] == 42
        assert execute(Opcode.DIV, 42, 6)[0] == 7

    def test_div_by_zero_is_total(self):
        assert execute(Opcode.DIV, 42, 0)[0] == 0

    def test_no_semantics_opcodes_return_zero(self):
        assert execute(Opcode.BR_COND, 1, 2) == (0, 0)
        assert execute(Opcode.NOP, 1, 2) == (0, 0)

    @given(u32, u32)
    def test_add_matches_python(self, a, b):
        assert execute(Opcode.ADD, a, b)[0] == truncate(a + b)

    @given(u32, u32)
    def test_sub_matches_python(self, a, b):
        assert execute(Opcode.SUB, a, b)[0] == truncate(a - b)

    @given(u32, u32)
    def test_zero_flag_consistency(self, a, b):
        result, flags = execute(Opcode.XOR, a, b)
        assert bool(flags & Flags.ZF) == (result == 0)


class TestMicroOp:
    def test_builder_assigns_increasing_uids(self):
        builder = UopBuilder()
        a = builder.alu(Opcode.ADD, ArchReg.EAX, (ArchReg.EBX,))
        b = builder.alu(Opcode.SUB, ArchReg.EAX, (ArchReg.EBX,))
        assert b.uid == a.uid + 1

    def test_builder_start_uid(self):
        builder = UopBuilder(start_uid=100)
        assert builder.make(Opcode.NOP).uid == 100

    def test_load_shorthand(self):
        builder = UopBuilder()
        load = builder.load(ArchReg.EAX, ArchReg.ESI, ArchReg.ECX, byte=True)
        assert load.opcode is Opcode.LOADB
        assert load.mem_size == 1
        assert load.is_load

    def test_store_shorthand(self):
        builder = UopBuilder()
        store = builder.store(ArchReg.EAX, ArchReg.ESI, ArchReg.ECX)
        assert store.is_store and not store.has_dest

    def test_branch_shorthand(self):
        builder = UopBuilder()
        br = builder.branch(conditional=True, taken=True)
        assert br.is_cond_branch and br.reads_flags and br.is_taken
        jmp = builder.branch(conditional=False)
        assert jmp.is_branch and not jmp.is_cond_branch

    def test_width_helpers(self):
        builder = UopBuilder()
        uop = builder.alu(Opcode.ADD, ArchReg.EAX, (ArchReg.EBX, ArchReg.ECX))
        uop = uop.with_values([3, 5], 8)
        assert uop.all_sources_narrow()
        assert uop.result_is_narrow()
        assert uop.is_fully_narrow()

    def test_wide_source_detection(self):
        builder = UopBuilder()
        uop = builder.alu(Opcode.ADD, ArchReg.EAX, (ArchReg.EBX, ArchReg.ECX))
        uop = uop.with_values([3, 0x10000], 0x10003)
        assert not uop.all_sources_narrow()
        assert not uop.result_is_narrow()
        assert uop.src_is_narrow(0)
        assert not uop.src_is_narrow(1)

    def test_wide_immediate_blocks_narrowness(self):
        builder = UopBuilder()
        uop = builder.alu(Opcode.ADD, ArchReg.EAX, (ArchReg.EBX,), imm=0x12345)
        uop = uop.with_values([1], 0x12346)
        assert not uop.all_sources_narrow()

    def test_latency_from_info(self):
        builder = UopBuilder()
        assert builder.make(Opcode.DIV, dest=ArchReg.EAX).latency == 20

    def test_class_predicates(self):
        builder = UopBuilder()
        assert builder.make(Opcode.FADD, dest=ArchReg.TMP3).is_fp
        assert builder.make(Opcode.COPY, dest=ArchReg.EAX).is_copy
        assert builder.make(Opcode.ADD, dest=ArchReg.EAX).op_class is OpClass.ALU
