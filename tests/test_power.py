"""Tests for the Wattch-like power model and energy-delay² accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.power.energy import EnergyReport, compare_ed2, energy_delay_squared, report_from_activity
from repro.power.wattch import ActivityCounts, PowerConfig, PowerModel


def activity(**overrides) -> ActivityCounts:
    base = ActivityCounts(
        wide_cycles=1000, fast_cycles=2000, fetched_uops=5000, committed_uops=5000,
        wide_alu_ops=2000, narrow_alu_ops=1000, wide_agu_ops=800, narrow_agu_ops=200,
        fpu_ops=100, wide_regfile_accesses=9000, narrow_regfile_accesses=3000,
        wide_scheduler_ops=3000, narrow_scheduler_ops=1500, rename_ops=5000,
        rob_ops=5000, dl0_accesses=1500, ul1_accesses=100, memory_accesses=10,
        predictor_accesses=5000, copies=500, helper_present=True)
    for key, value in overrides.items():
        setattr(base, key, value)
    return base


class TestPowerModel:
    def test_total_positive(self):
        breakdown = PowerModel().evaluate(activity())
        assert breakdown.total > 0

    def test_narrow_structures_cheaper_per_access(self):
        config = PowerConfig()
        model = PowerModel(config)
        wide_only = model.evaluate(activity(narrow_alu_ops=0, wide_alu_ops=1000))
        narrow_only = model.evaluate(activity(narrow_alu_ops=1000, wide_alu_ops=0))
        assert narrow_only.per_structure["narrow_execute"] < wide_only.per_structure["wide_execute"]

    def test_width_scale(self):
        assert PowerConfig().width_scale(8) == pytest.approx(0.25)
        assert PowerConfig().width_scale(16) == pytest.approx(0.5)

    def test_no_helper_no_narrow_clock(self):
        breakdown = PowerModel().evaluate(activity(helper_present=False))
        assert breakdown.per_structure["narrow_clock"] == 0.0

    def test_helper_adds_clock_energy(self):
        with_helper = PowerModel().evaluate(activity())
        assert with_helper.per_structure["narrow_clock"] > 0

    def test_fraction(self):
        breakdown = PowerModel().evaluate(activity())
        assert 0 < breakdown.fraction("memory") < 1
        assert breakdown.fraction("nonexistent") == 0.0

    def test_energy_monotone_in_activity(self):
        small = PowerModel().evaluate(activity(copies=0))
        large = PowerModel().evaluate(activity(copies=10_000))
        assert large.total > small.total

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_total_nonnegative(self, alu_ops):
        breakdown = PowerModel().evaluate(activity(wide_alu_ops=alu_ops))
        assert breakdown.total >= 0


class TestEnergyDelay:
    def test_ed2_definition(self):
        report = EnergyReport(label="x", energy=10.0, delay_cycles=4.0)
        assert report.energy_delay == 40.0
        assert report.energy_delay_squared == 160.0

    def test_energy_delay_squared_builder(self):
        breakdown = PowerModel().evaluate(activity())
        report = energy_delay_squared(breakdown, delay_cycles=100, label="run")
        assert report.energy == pytest.approx(breakdown.total)

    def test_invalid_delay(self):
        breakdown = PowerModel().evaluate(activity())
        with pytest.raises(ValueError):
            energy_delay_squared(breakdown, delay_cycles=0)

    def test_report_from_activity(self):
        report = report_from_activity(activity(), delay_cycles=1000, label="helper")
        assert report.label == "helper"
        assert report.energy > 0

    def test_compare_ed2_sign(self):
        baseline = EnergyReport("base", energy=100.0, delay_cycles=10.0)
        better = EnergyReport("helper", energy=105.0, delay_cycles=9.0)
        worse = EnergyReport("bad", energy=150.0, delay_cycles=11.0)
        assert compare_ed2(baseline, better) > 0
        assert compare_ed2(baseline, worse) < 0

    def test_compare_ed2_invalid_baseline(self):
        with pytest.raises(ValueError):
            compare_ed2(EnergyReport("b", 0.0, 1.0), EnergyReport("c", 1.0, 1.0))

    def test_faster_but_bigger_machine_can_win_ed2(self):
        """The helper cluster adds energy per cycle but reduces cycles; ED²
        rewards the trade exactly as §3.7 argues."""
        base_activity = activity(helper_present=False, narrow_alu_ops=0,
                                 narrow_scheduler_ops=0, narrow_regfile_accesses=0,
                                 copies=0, fast_cycles=1000)
        helper_activity = activity()
        base = report_from_activity(base_activity, delay_cycles=1200, label="baseline")
        helper = report_from_activity(helper_activity, delay_cycles=1000, label="helper")
        # With an ~17% cycle reduction the quadratic delay term dominates the
        # added helper energy.
        assert compare_ed2(base, helper) > 0
