"""Tests for the Wattch-like power model and energy-delay² accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import (
    ClusterSpec,
    mixed_helper_topology,
    monolithic_topology,
)
from repro.power.energy import EnergyReport, compare_ed2, energy_delay_squared, report_from_activity
from repro.power.wattch import ActivityCounts, ClusterActivity, PowerConfig, PowerModel


def activity(**overrides) -> ActivityCounts:
    base = ActivityCounts(
        wide_cycles=1000, fast_cycles=2000, fetched_uops=5000, committed_uops=5000,
        wide_alu_ops=2000, narrow_alu_ops=1000, wide_agu_ops=800, narrow_agu_ops=200,
        fpu_ops=100, wide_regfile_accesses=9000, narrow_regfile_accesses=3000,
        wide_scheduler_ops=3000, narrow_scheduler_ops=1500, rename_ops=5000,
        rob_ops=5000, dl0_accesses=1500, ul1_accesses=100, memory_accesses=10,
        predictor_accesses=5000, copies=500, helper_present=True)
    for key, value in overrides.items():
        setattr(base, key, value)
    return base


class TestPowerModel:
    def test_total_positive(self):
        breakdown = PowerModel().evaluate(activity())
        assert breakdown.total > 0

    def test_narrow_structures_cheaper_per_access(self):
        config = PowerConfig()
        model = PowerModel(config)
        wide_only = model.evaluate(activity(narrow_alu_ops=0, wide_alu_ops=1000))
        narrow_only = model.evaluate(activity(narrow_alu_ops=1000, wide_alu_ops=0))
        assert narrow_only.per_structure["narrow_execute"] < wide_only.per_structure["wide_execute"]

    def test_width_scale(self):
        assert PowerConfig().width_scale(8) == pytest.approx(0.25)
        assert PowerConfig().width_scale(16) == pytest.approx(0.5)

    def test_no_helper_no_narrow_clock(self):
        breakdown = PowerModel().evaluate(activity(helper_present=False))
        assert breakdown.per_structure["narrow_clock"] == 0.0

    def test_helper_adds_clock_energy(self):
        with_helper = PowerModel().evaluate(activity())
        assert with_helper.per_structure["narrow_clock"] > 0

    def test_fraction(self):
        breakdown = PowerModel().evaluate(activity())
        assert 0 < breakdown.fraction("memory") < 1
        assert breakdown.fraction("nonexistent") == 0.0

    def test_energy_monotone_in_activity(self):
        small = PowerModel().evaluate(activity(copies=0))
        large = PowerModel().evaluate(activity(copies=10_000))
        assert large.total > small.total

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_total_nonnegative(self, alu_ops):
        breakdown = PowerModel().evaluate(activity(wide_alu_ops=alu_ops))
        assert breakdown.total >= 0


def cluster_activity(name="c", width=32, ratio=1, **overrides) -> ClusterActivity:
    base = ClusterActivity(name=name, datapath_width=width, clock_ratio=ratio,
                           cycles=1000, alu_ops=400, agu_ops=150, fpu_ops=0,
                           regfile_accesses=1800, scheduler_ops=600)
    for key, value in overrides.items():
        setattr(base, key, value)
    return base


class TestPerClusterScaling:
    """Per-cluster coefficient derivation from ClusterSpec (§2.1 scaling).

    The paper's argument: narrow-structure access energy scales linearly
    with datapath width, and a faster-clocked helper burns proportionally
    more clock energy.  Pinned here per cluster, including the asymmetric
    ``8@2+16@1`` mix of the ROADMAP.
    """

    #: the mixed machine's helpers: (cluster name, width, clock ratio)
    MIXED_HELPERS = [("n8x2", 8, 2), ("n16x1", 16, 1)]

    @pytest.fixture(scope="class")
    def mixed(self):
        return mixed_helper_topology([(8, 2), (16, 1)])

    @pytest.mark.parametrize("name,width,ratio", MIXED_HELPERS)
    def test_access_energy_scales_linearly_with_width(self, mixed, name,
                                                      width, ratio):
        """A w-bit cluster's regfile/ALU access energy is w/32 of the wide
        cluster's, per access, on the mixed topology."""
        model = PowerModel()
        host = mixed.host
        spec = next(s for s in mixed.helpers if s.name == name)
        counts = dict(cycles=0, alu_ops=1000, agu_ops=500, regfile_accesses=3000)
        wide = model.evaluate_cluster(
            host, cluster_activity(name="wide", **counts), is_host=True)
        narrow = model.evaluate_cluster(
            spec, cluster_activity(name=name, width=width, ratio=ratio,
                                   **counts))
        scale = width / 32
        assert narrow.per_structure["regfile"] == pytest.approx(
            scale * wide.per_structure["regfile"])
        assert narrow.per_structure["execute"] == pytest.approx(
            scale * wide.per_structure["execute"])
        assert narrow.per_structure["scheduler"] == pytest.approx(
            scale * wide.per_structure["scheduler"])

    def test_eight_bit_regfile_is_quarter_of_wide(self, mixed):
        """The paper design point's 8/32 factor, spelled out."""
        model = PowerModel()
        spec = next(s for s in mixed.helpers if s.name == "n8x2")
        act = cluster_activity(name="n8x2", width=8, ratio=2,
                               cycles=0, regfile_accesses=1)
        act.alu_ops = act.agu_ops = act.scheduler_ops = 0
        wide_act = cluster_activity(name="wide", cycles=0, regfile_accesses=1)
        wide_act.alu_ops = wide_act.agu_ops = wide_act.scheduler_ops = 0
        narrow = model.evaluate_cluster(spec, act)
        wide = model.evaluate_cluster(mixed.host, wide_act, is_host=True)
        assert narrow.total == pytest.approx(wide.total * 8 / 32)

    @pytest.mark.parametrize("name,width,ratio", MIXED_HELPERS)
    def test_clock_energy_scales_with_clock_ratio(self, mixed, name, width,
                                                  ratio):
        """Over a fixed host-cycle window a ratio-r helper clocks r times as
        often, so its clock-network energy scales with ``clock_ratio``."""
        model = PowerModel()
        spec = next(s for s in mixed.helpers if s.name == name)
        host_cycles = 500
        act = cluster_activity(name=name, width=width, ratio=ratio,
                               cycles=host_cycles * ratio,
                               alu_ops=0, agu_ops=0, regfile_accesses=0,
                               scheduler_ops=0)
        reference = cluster_activity(name=name, width=width, ratio=1,
                                     cycles=host_cycles, alu_ops=0, agu_ops=0,
                                     regfile_accesses=0, scheduler_ops=0)
        clocked = model.evaluate_cluster(spec, act)
        unclocked = model.evaluate_cluster(spec, reference)
        assert clocked.per_structure["clock"] == pytest.approx(
            ratio * unclocked.per_structure["clock"])

    def test_helper_clock_coefficient_matches_legacy_at_ref_width(self):
        """At the 8-bit reference width the derived helper clock coefficient
        is exactly the legacy ``narrow_clock_per_cycle``."""
        cfg = PowerConfig()
        model = PowerModel(cfg)
        spec = ClusterSpec(name="h", datapath_width=8, clock_ratio=2)
        co = model.coefficients_for(spec, is_host=False)
        assert co.clock_per_cycle == cfg.narrow_clock_per_cycle
        sixteen = ClusterSpec(name="h16", datapath_width=16, clock_ratio=1)
        assert model.coefficients_for(sixteen, False).clock_per_cycle == \
            pytest.approx(2 * cfg.narrow_clock_per_cycle)

    def test_scheduler_energy_scales_with_queue_size(self):
        model = PowerModel()
        small = ClusterSpec(name="s", datapath_width=8, clock_ratio=2,
                            queue_size=16)
        big = ClusterSpec(name="b", datapath_width=8, clock_ratio=2,
                          queue_size=32)
        act = cluster_activity(name="x", width=8, ratio=2)
        assert model.evaluate_cluster(small, act).per_structure["scheduler"] \
            == pytest.approx(
                0.5 * model.evaluate_cluster(big, act).per_structure["scheduler"])

    def test_fp_capable_helper_pays_fp_clock_adder(self):
        cfg = PowerConfig()
        model = PowerModel(cfg)
        plain = ClusterSpec(name="p", datapath_width=16, clock_ratio=1)
        fp = ClusterSpec(name="f", datapath_width=16, clock_ratio=1, has_fp=True)
        assert model.coefficients_for(fp, False).clock_per_cycle == \
            pytest.approx(model.coefficients_for(plain, False).clock_per_cycle
                          + cfg.fp_clock_per_cycle)

    def test_evaluate_topology_covers_every_cluster(self, mixed):
        model = PowerModel()
        acts = {spec.name: cluster_activity(name=spec.name,
                                            width=spec.datapath_width,
                                            ratio=spec.clock_ratio)
                for spec in mixed.clusters}
        breakdowns = model.evaluate_topology(mixed, acts)
        assert set(breakdowns) == {"wide", "n8x2", "n16x1"}
        assert all(b.total > 0 for b in breakdowns.values())

    def test_monolithic_topology_single_breakdown(self):
        model = PowerModel()
        topo = monolithic_topology()
        breakdowns = model.evaluate_topology(
            topo, {"wide": cluster_activity(name="wide")})
        assert set(breakdowns) == {"wide"}


class TestPowerConfigKeyDict:
    def test_round_trips_canonical_json(self):
        from repro.sim.cache import canonical_text
        import json

        key = PowerConfig().to_key_dict()
        assert json.loads(canonical_text(key)) == key

    def test_disabled_flag_part_of_key(self):
        assert PowerConfig(enabled=False).to_key_dict() != \
            PowerConfig().to_key_dict()


class TestEnergyDelay:
    def test_ed2_definition(self):
        report = EnergyReport(label="x", energy=10.0, delay_cycles=4.0)
        assert report.energy_delay == 40.0
        assert report.energy_delay_squared == 160.0

    def test_energy_delay_squared_builder(self):
        breakdown = PowerModel().evaluate(activity())
        report = energy_delay_squared(breakdown, delay_cycles=100, label="run")
        assert report.energy == pytest.approx(breakdown.total)

    def test_invalid_delay(self):
        breakdown = PowerModel().evaluate(activity())
        with pytest.raises(ValueError):
            energy_delay_squared(breakdown, delay_cycles=0)

    def test_report_from_activity(self):
        report = report_from_activity(activity(), delay_cycles=1000, label="helper")
        assert report.label == "helper"
        assert report.energy > 0

    def test_compare_ed2_sign(self):
        baseline = EnergyReport("base", energy=100.0, delay_cycles=10.0)
        better = EnergyReport("helper", energy=105.0, delay_cycles=9.0)
        worse = EnergyReport("bad", energy=150.0, delay_cycles=11.0)
        assert compare_ed2(baseline, better) > 0
        assert compare_ed2(baseline, worse) < 0

    def test_compare_ed2_invalid_baseline(self):
        with pytest.raises(ValueError):
            compare_ed2(EnergyReport("b", 0.0, 1.0), EnergyReport("c", 1.0, 1.0))

    def test_faster_but_bigger_machine_can_win_ed2(self):
        """The helper cluster adds energy per cycle but reduces cycles; ED²
        rewards the trade exactly as §3.7 argues."""
        base_activity = activity(helper_present=False, narrow_alu_ops=0,
                                 narrow_scheduler_ops=0, narrow_regfile_accesses=0,
                                 copies=0, fast_cycles=1000)
        helper_activity = activity()
        base = report_from_activity(base_activity, delay_cycles=1200, label="baseline")
        helper = report_from_activity(helper_activity, delay_cycles=1000, label="helper")
        # With an ~17% cycle reduction the quadratic delay term dominates the
        # added helper energy.
        assert compare_ed2(base, helper) > 0
