"""Tests for the fault-tolerant supervision layer (PR 10 tentpole).

Every recovery path is driven by a seeded :class:`~repro.faultkit.FaultPlan`
— worker SIGKILL mid-job, hangs past the deadline, transient exceptions,
cache/trace corruption, a deterministic KeyboardInterrupt — and the
invariant checked throughout is the engine's core contract: *surviving
results are bit-identical to a fault-free serial run* (compared via
``dataclasses.asdict``, the same convention as ``tests/test_engine.py``),
quarantined jobs are recorded and replayable, and an interrupted campaign
resumes touching zero completed jobs.
"""

import dataclasses
import json

import pytest

from repro.faultkit import FaultPlan
from repro.sim.checkpoint import (
    CampaignCheckpoint,
    load_quarantine_file,
    write_quarantine_file,
)
from repro.sim.engine import SweepEngine, SweepJob
from repro.sim.experiment import ExperimentRunner, build_topology_grid
from repro.sim.hotstate import compiled_available
from repro.sim.supervise import SupervisorPolicy, SweepReport
from repro.trace.profiles import get_profile

UOPS = 400
SEED = 2006

#: Fast supervision for tests: tight backoff and poll, short deadlines.
FAST = SupervisorPolicy(backoff_base=0.01, poll_interval=0.005,
                        timeout_base=60.0)


def _jobs(pairs):
    return [SweepJob(bench, policy, UOPS, SEED) for bench, policy in pairs]


def _fingerprint(results):
    return {(job.benchmark, job.policy): dataclasses.asdict(result)
            for job, result in results.items()}


@pytest.fixture(scope="module")
def truth():
    """Fault-free serial ground truth for the job set the tests reuse."""
    jobs = _jobs([("gcc", "baseline"), ("gcc", "ir"),
                  ("gzip", "baseline"), ("gzip", "ir")])
    with SweepEngine(jobs=1, faults=FaultPlan(seed=0)) as engine:
        return _fingerprint(engine.run_jobs(jobs))


class TestSerialSupervision:
    def test_transient_faults_retry_to_identical_results(self, truth):
        plan = FaultPlan(seed=3, transient=1.0, backoff=0.01)
        with SweepEngine(jobs=1, supervisor=FAST, faults=plan) as engine:
            results = engine.run_jobs(_jobs([("gcc", "baseline"),
                                             ("gcc", "ir"),
                                             ("gzip", "baseline"),
                                             ("gzip", "ir")]))
        assert {(j.benchmark, j.policy): dataclasses.asdict(r)
                for j, r in results.items()} == truth
        assert engine.report.computed == 4
        assert engine.report.retries == 4  # every first attempt faulted
        assert engine.report.worker_errors == 4
        assert engine.report.ok

    @pytest.mark.skipif(not compiled_available(),
                        reason="degradation ladder needs the compiled backend")
    def test_compiled_failure_degrades_to_python(self, truth):
        """compiled_only faults spare the degraded retry, proving the
        supervisor re-ran the job on the python backend — and that the
        degradation is recorded out-of-band, not stamped into the result."""
        plan = FaultPlan(seed=3, transient=1.0, compiled_only=True,
                         backoff=0.01)
        with SweepEngine(jobs=1, supervisor=FAST, faults=plan) as engine:
            results = engine.run_jobs(_jobs([("gcc", "ir"), ("gzip", "ir")]))
        assert len(results) == 2
        assert len(engine.report.degraded) == 2
        assert all(token.startswith(("gcc:ir", "gzip:ir"))
                   for token in engine.report.degraded)
        for job, result in results.items():
            assert dataclasses.asdict(result) == truth[(job.benchmark,
                                                        job.policy)]

    def test_sticky_fault_quarantines_without_aborting(self, tmp_path, truth):
        ledger = tmp_path / "failed-jobs.json"
        plan = FaultPlan(seed=3, sticky=("crash@gcc:ir",), backoff=0.01)
        with SweepEngine(jobs=1, supervisor=FAST, faults=plan,
                         quarantine_path=str(ledger)) as engine:
            results = engine.run_jobs(_jobs([("gcc", "baseline"),
                                             ("gcc", "ir"),
                                             ("gzip", "ir")]))
        # The campaign survives: the other jobs' results are intact.
        assert {(j.benchmark, j.policy) for j in results} == {
            ("gcc", "baseline"), ("gzip", "ir")}
        for job, result in results.items():
            assert dataclasses.asdict(result) == truth[(job.benchmark,
                                                        job.policy)]
        assert not engine.report.ok
        (record,) = engine.report.quarantined
        assert record["job"]["benchmark"] == "gcc"
        assert record["job"]["policy"] == "ir"
        assert len(record["attempts"]) == FAST.max_attempts
        # The ledger is replayable: its job dict reconstructs the SweepJob.
        (loaded,) = load_quarantine_file(ledger)
        assert SweepJob(**loaded["job"]) == SweepJob("gcc", "ir", UOPS, SEED)


class TestParallelSupervision:
    def test_sigkill_mid_job_is_survived(self, truth):
        """A worker SIGKILLed mid-job (the satellite scenario verbatim):
        the death is attributed, the pool respawned, the job retried, and
        every result matches the fault-free serial truth."""
        plan = FaultPlan(seed=7, crash=0.35, backoff=0.01)
        with SweepEngine(jobs=2, allow_oversubscribe=True, supervisor=FAST,
                         faults=plan) as engine:
            results = engine.run_jobs(_jobs([("gcc", "baseline"),
                                             ("gcc", "ir"),
                                             ("gzip", "baseline"),
                                             ("gzip", "ir")]))
            assert engine.report.worker_deaths > 0, \
                "plan seed must actually kill at least one worker"
            assert engine.report.pool_respawns > 0
        assert _fingerprint(results) == truth
        assert engine.report.ok

    def test_hang_past_deadline_times_out_and_retries(self, truth):
        plan = FaultPlan(seed=17, hang=0.35, hang_delay=60.0,
                         deadline=2.0, backoff=0.01)
        with SweepEngine(jobs=2, allow_oversubscribe=True, supervisor=FAST,
                         faults=plan) as engine:
            results = engine.run_jobs(_jobs([("gcc", "baseline"),
                                             ("gcc", "ir"),
                                             ("gzip", "baseline"),
                                             ("gzip", "ir")]))
            assert engine.report.timeouts > 0, \
                "plan seed must actually hang at least one job"
        assert _fingerprint(results) == truth

    def test_externally_broken_pool_is_survived(self, truth):
        """Killing every pool worker between batches must not wedge the
        engine (the BrokenProcessPool scenario).  The nastiest variant is
        deliberate: an idle worker SIGKILLed while holding the task queue's
        reader lock leaves the auto-replaced workers wedged on that lock —
        recovery comes from the per-job deadline, which respawns the whole
        pool with fresh queues."""
        import os
        import signal

        quick = SupervisorPolicy(backoff_base=0.01, poll_interval=0.005,
                                 timeout_base=5.0)
        with SweepEngine(jobs=2, allow_oversubscribe=True,
                         supervisor=quick, faults=FaultPlan(seed=0)) as engine:
            pool = engine._ensure_pool()
            for proc in pool._pool:
                os.kill(proc.pid, signal.SIGKILL)
            results = engine.run_jobs(_jobs([("gcc", "baseline"),
                                             ("gcc", "ir"),
                                             ("gzip", "baseline"),
                                             ("gzip", "ir")]))
            assert engine.report.pool_respawns > 0
        assert _fingerprint(results) == truth

    def test_parallel_equals_serial_under_chaos(self, truth):
        """serial == parallel == fault-free, all three ways at once."""
        plan = FaultPlan(seed=11, crash=0.15, transient=0.25, slow=0.2,
                         slow_delay=0.01, backoff=0.01)
        jobs = _jobs([("gcc", "baseline"), ("gcc", "ir"),
                      ("gzip", "baseline"), ("gzip", "ir")])
        with SweepEngine(jobs=1, supervisor=FAST, faults=plan) as engine:
            serial = _fingerprint(engine.run_jobs(jobs))
        with SweepEngine(jobs=2, allow_oversubscribe=True, supervisor=FAST,
                         faults=plan) as engine:
            parallel = _fingerprint(engine.run_jobs(jobs))
        assert serial == truth
        assert parallel == truth


class TestCheckpointResume:
    def _runner(self, tmp_path, **kwargs):
        return ExperimentRunner(trace_uops=UOPS, seed=SEED, jobs=1,
                                cache_dir=str(tmp_path / "cache"),
                                supervisor=FAST, **kwargs)

    def test_interrupt_then_resume_equals_uninterrupted(self, tmp_path):
        profiles = [get_profile("gcc"), get_profile("gzip")]
        policies = ["ir", "cr"]
        uninterrupted = ExperimentRunner(
            trace_uops=UOPS, seed=SEED, jobs=1,
            supervisor=FAST).run_suite(profiles, policies)

        plan = FaultPlan(seed=5, interrupt_after=3, backoff=0.01)
        with pytest.raises(KeyboardInterrupt):
            self._runner(tmp_path, faults=plan).run_suite(profiles, policies)

        resumed_runner = self._runner(tmp_path)
        resumed = resumed_runner.run_suite(profiles, policies)
        report = resumed_runner.report
        # Jobs completed before the interrupt are resumed, not recomputed.
        assert report.resumed == 3
        assert report.computed == 6 - 3
        for bench in ("gcc", "gzip"):
            assert (dataclasses.asdict(resumed.results[bench].baseline)
                    == dataclasses.asdict(
                        uninterrupted.results[bench].baseline))
            for policy in policies:
                assert (dataclasses.asdict(
                            resumed.results[bench].by_policy[policy])
                        == dataclasses.asdict(
                            uninterrupted.results[bench].by_policy[policy]))

        # A third invocation touches zero jobs.
        third_runner = self._runner(tmp_path)
        third_runner.run_suite(profiles, policies)
        assert third_runner.report.computed == 0
        assert third_runner.report.resumed == 6

    def test_corrupted_cache_entries_heal_before_campaign_end(self, tmp_path):
        """Same-run corruption is verify-after-write healed, so the resumed
        run still touches zero jobs."""
        plan = FaultPlan(seed=5, corrupt_result=1.0, backoff=0.01)
        profiles = [get_profile("gcc")]
        runner = self._runner(tmp_path, faults=plan)
        runner.run_suite(profiles, ["ir"])
        assert runner.report.store_repairs == 2
        assert runner.cache.healed == 2

        again = self._runner(tmp_path)
        again.run_suite(profiles, ["ir"])
        assert again.report.computed == 0
        assert again.report.resumed == 2

    def test_torn_checkpoint_tail_is_ignored(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        good = json.dumps({"format": 1, "kind": "completed", "key": "k1",
                           "job": {"benchmark": "gcc"}})
        path.write_text(good + "\n" + '{"format": 1, "kind": "comp',
                        encoding="utf-8")
        checkpoint = CampaignCheckpoint(path)
        assert checkpoint.completed == {"k1": {"benchmark": "gcc"}}
        assert checkpoint.dropped_lines == 1

    def test_completion_clears_a_quarantine_record(self, tmp_path):
        checkpoint = CampaignCheckpoint(tmp_path / "checkpoint.jsonl")
        job = SweepJob("gcc", "ir", UOPS, SEED)
        checkpoint.mark_quarantined("k1", job, [{"reason": "error"}])
        checkpoint.mark_completed("k1", job)
        reloaded = CampaignCheckpoint(tmp_path / "checkpoint.jsonl")
        assert "k1" in reloaded.completed
        assert "k1" not in reloaded.quarantined

    def test_quarantine_file_round_trips(self, tmp_path):
        records = [{"job": {"benchmark": "gcc", "policy": "ir",
                            "trace_uops": UOPS, "seed": SEED,
                            "use_slicing": False},
                    "key": "deadbeef", "attempts": []}]
        path = write_quarantine_file(tmp_path / "failed-jobs.json", records)
        assert load_quarantine_file(path) == records
        assert load_quarantine_file(tmp_path / "missing.json") == []


class TestReport:
    def test_summary_line_is_none_when_nothing_happened(self):
        assert SweepReport(computed=5, cache_hits=2).summary_line() is None

    def test_summary_line_names_what_happened(self):
        report = SweepReport(computed=3, resumed=2, retries=1,
                             degraded=["gcc:ir"], store_repairs=1)
        line = report.summary_line()
        assert "computed=3" in line
        assert "resumed=2" in line
        assert "retries=1" in line
        assert "degraded=1 (gcc:ir)" in line
        assert "store-repairs=1" in line


class TestAcceptanceScenario:
    """ISSUE.md acceptance: a seeded chaos plan (crashes + hangs + cache
    corruption) over a 12-point explore grid completes without
    intervention; surviving results are bit-identical to a fault-free
    serial run; degraded jobs are flagged; a second invocation resumes
    touching zero completed jobs."""

    PLAN = FaultPlan(seed=1234, crash=0.2, hang=0.1, transient=0.15,
                     corrupt_result=0.4, backoff=0.01)

    def test_chaos_explore_grid_resumes_clean(self, tmp_path):
        points = build_topology_grid([4, 8, 16], [1, 2], [1, 2])
        assert len(points) == 12
        profiles = [get_profile("gcc")]

        clean = ExperimentRunner(
            trace_uops=UOPS, seed=SEED, jobs=1,
            supervisor=FAST).run_topology_grid(points, profiles)

        chaos_runner = ExperimentRunner(trace_uops=UOPS, seed=SEED, jobs=1,
                                        cache_dir=str(tmp_path / "cache"),
                                        supervisor=FAST, faults=self.PLAN)
        chaos = chaos_runner.run_topology_grid(points, profiles)
        report = chaos_runner.report
        # 12 grid jobs + 1 shared baseline all complete (faults spare
        # retries by default, so three attempts always converge).
        assert report.computed == 13
        assert report.ok
        assert report.retries > 0, "plan seed must actually inject faults"
        if compiled_available():
            assert report.degraded, "compiled failures must be flagged"
        assert (dataclasses.asdict(chaos.baselines["gcc"])
                == dataclasses.asdict(clean.baselines["gcc"]))
        for point in points:
            assert (dataclasses.asdict(chaos.results[(point.name, "gcc")])
                    == dataclasses.asdict(clean.results[(point.name, "gcc")]))

        resumed_runner = ExperimentRunner(trace_uops=UOPS, seed=SEED, jobs=1,
                                          cache_dir=str(tmp_path / "cache"),
                                          supervisor=FAST, faults=self.PLAN)
        resumed_runner.run_topology_grid(points, profiles)
        assert resumed_runner.report.computed == 0
        assert resumed_runner.report.resumed == 13
