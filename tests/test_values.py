"""Unit and property tests for the data-width value utilities."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.values import (
    MACHINE_WIDTH,
    NARROW_WIDTH,
    WIDE_MASK,
    add_with_carry,
    carry_propagates,
    chunked_add,
    is_narrow,
    join_bytes,
    leading_one_count,
    leading_zero_count,
    sign_extend,
    split_bytes,
    to_signed,
    truncate,
    upper_bits_unchanged,
    value_width,
    zero_extend,
)

u32 = st.integers(min_value=0, max_value=WIDE_MASK)


class TestTruncate:
    def test_truncate_in_range(self):
        assert truncate(0x1234) == 0x1234

    def test_truncate_wraps(self):
        assert truncate(1 << 32) == 0
        assert truncate((1 << 32) + 5) == 5

    def test_truncate_custom_width(self):
        assert truncate(0x1FF, 8) == 0xFF

    def test_truncate_rejects_bad_width(self):
        with pytest.raises(ValueError):
            truncate(1, 0)


class TestExtension:
    def test_zero_extend(self):
        assert zero_extend(0xFF, 8) == 0xFF

    def test_sign_extend_positive(self):
        assert sign_extend(0x7F, 8) == 0x7F

    def test_sign_extend_negative(self):
        assert sign_extend(0x80, 8) == 0xFFFFFF80
        assert sign_extend(0xFF, 8) == 0xFFFFFFFF

    def test_sign_extend_bad_widths(self):
        with pytest.raises(ValueError):
            sign_extend(1, 0)
        with pytest.raises(ValueError):
            sign_extend(1, 16, 8)

    def test_to_signed(self):
        assert to_signed(0xFFFFFFFF) == -1
        assert to_signed(5) == 5


class TestLeadingDetectors:
    def test_zero_value(self):
        assert leading_zero_count(0) == MACHINE_WIDTH
        assert leading_one_count(0) == 0

    def test_all_ones(self):
        assert leading_one_count(0xFFFFFFFF) == MACHINE_WIDTH
        assert leading_zero_count(0xFFFFFFFF) == 0

    def test_small_value(self):
        assert leading_zero_count(1) == 31
        assert leading_zero_count(0xFF) == 24

    def test_leading_ones_small_negative(self):
        # -1 .. -128 in two's complement have >= 24 leading ones.
        assert leading_one_count(truncate(-5)) >= 24

    @given(u32)
    def test_detector_counts_complementary(self, value):
        # At most one of the two detectors can report a nonzero count.
        lz = leading_zero_count(value)
        lo = leading_one_count(value)
        assert lz == 0 or lo == 0 or value in (0, WIDE_MASK)


class TestNarrowness:
    def test_zero_is_narrow(self):
        assert is_narrow(0)

    def test_255_boundary(self):
        assert is_narrow(0xFF)
        assert not is_narrow(0x100)

    def test_small_negative_is_narrow(self):
        assert is_narrow(truncate(-1))
        assert is_narrow(truncate(-128))

    def test_wide_negative_not_narrow(self):
        assert not is_narrow(truncate(-300))

    def test_custom_narrow_width(self):
        assert is_narrow(0xFFFF, narrow_width=16)
        assert not is_narrow(0x1FFFF, narrow_width=16)

    def test_narrow_width_equal_machine_width(self):
        assert is_narrow(0xDEADBEEF, narrow_width=32)

    @given(st.integers(min_value=0, max_value=0xFF))
    def test_all_byte_values_narrow(self, value):
        assert is_narrow(value)

    @given(u32)
    def test_narrow_iff_sign_extension_of_low_byte(self, value):
        expected = sign_extend(value & 0xFF, NARROW_WIDTH) == value or (value >> 8) == 0
        assert is_narrow(value) == expected

    @given(u32)
    def test_value_width_consistent_with_is_narrow(self, value):
        # A value is narrow exactly when its two's complement width fits in
        # NARROW_WIDTH bits (allowing the unsigned 0..255 range as well).
        width = value_width(value)
        if width <= NARROW_WIDTH:
            assert is_narrow(value)


class TestCarry:
    def test_no_carry(self):
        assert not carry_propagates(0x10, 0x20)

    def test_carry(self):
        assert carry_propagates(0xFF, 0x01)

    def test_carry_only_low_bytes_matter(self):
        assert not carry_propagates(0xFFFFFF00, 0x00000001)

    def test_upper_bits_unchanged(self):
        base = 0xFFFC4A02
        offset = 0x1C
        result = truncate(base + offset)
        assert upper_bits_unchanged(base, result)

    def test_upper_bits_changed_on_carry(self):
        base = 0x000000F0
        offset = 0x20
        result = truncate(base + offset)
        assert not upper_bits_unchanged(base, result)

    @given(u32, st.integers(min_value=0, max_value=0xFF))
    def test_carry_predicts_upper_bits(self, base, offset):
        # The CR scheme's core invariant: the upper 24 bits of base+offset
        # equal those of base exactly when no carry leaves the low byte.
        result = truncate(base + offset)
        assert upper_bits_unchanged(base, result) == (not carry_propagates(base, offset))


class TestSplitJoin:
    def test_split_bytes_roundtrip_simple(self):
        assert split_bytes(0x04030201) == [0x01, 0x02, 0x03, 0x04]
        assert join_bytes([0x01, 0x02, 0x03, 0x04]) == 0x04030201

    @given(u32)
    def test_split_join_roundtrip(self, value):
        assert join_bytes(split_bytes(value)) == value

    @given(u32)
    def test_split_chunks_are_narrow(self, value):
        for chunk in split_bytes(value):
            assert 0 <= chunk <= 0xFF

    def test_add_with_carry(self):
        assert add_with_carry(0xFFFFFFFF, 1) == (0, 1)
        assert add_with_carry(1, 2) == (3, 0)

    @given(u32, u32)
    def test_chunked_add_matches_wide_add(self, a, b):
        # IR's chained 8-bit split execution must agree with the 32-bit ALU.
        assert chunked_add(a, b) == truncate(a + b)
