"""Tests for trace save/load round-trips."""

import pytest

from repro.sim.baseline import simulate_baseline
from repro.trace.serialization import (
    FORMAT_VERSION,
    iter_trace_records,
    load_trace,
    save_trace,
)
from repro.trace.profiles import get_profile
from repro.trace.synthetic import generate_trace


@pytest.fixture()
def small_trace():
    return generate_trace(get_profile("gzip"), 500, seed=42)


class TestRoundTrip:
    def test_plain_roundtrip(self, small_trace, tmp_path):
        path = save_trace(small_trace, tmp_path / "trace.jsonl")
        loaded = load_trace(path)
        assert loaded.name == small_trace.name
        assert loaded.seed == small_trace.seed
        assert loaded.static_pcs == small_trace.static_pcs
        assert len(loaded) == len(small_trace)

    def test_gzip_roundtrip(self, small_trace, tmp_path):
        path = save_trace(small_trace, tmp_path / "trace.jsonl.gz")
        loaded = load_trace(path)
        assert len(loaded) == len(small_trace)

    def test_uop_fields_preserved(self, small_trace, tmp_path):
        path = save_trace(small_trace, tmp_path / "trace.jsonl")
        loaded = load_trace(path)
        for original, restored in zip(small_trace.uops, loaded.uops):
            assert original.uid == restored.uid
            assert original.pc == restored.pc
            assert original.opcode == restored.opcode
            assert original.srcs == restored.srcs
            assert original.dest == restored.dest
            assert original.imm == restored.imm
            assert original.src_values == restored.src_values
            assert original.result_value == restored.result_value
            assert original.mem_addr == restored.mem_addr
            assert original.is_taken == restored.is_taken
            assert original.producer_uids == restored.producer_uids
            assert original.flags_producer_uid == restored.flags_producer_uid

    def test_loaded_trace_validates_and_simulates(self, small_trace, tmp_path):
        path = save_trace(small_trace, tmp_path / "trace.jsonl")
        loaded = load_trace(path)
        loaded.validate()
        original_result = simulate_baseline(small_trace)
        loaded_result = simulate_baseline(loaded)
        assert loaded_result.slow_cycles == original_result.slow_cycles
        assert loaded_result.committed_uops == original_result.committed_uops

    def test_streaming_iterator(self, small_trace, tmp_path):
        path = save_trace(small_trace, tmp_path / "trace.jsonl")
        streamed = list(iter_trace_records(path))
        assert len(streamed) == len(small_trace)
        assert streamed[0].uid == small_trace.uops[0].uid


class TestErrors:
    def test_unsupported_format_rejected(self, small_trace, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": 999, "num_uops": 0}\n', encoding="utf-8")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_truncated_file_rejected(self, small_trace, tmp_path):
        path = save_trace(small_trace, tmp_path / "trace.jsonl")
        lines = path.read_text(encoding="utf-8").splitlines()
        path.write_text("\n".join(lines[: len(lines) // 2]) + "\n", encoding="utf-8")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_format_version_constant(self):
        assert FORMAT_VERSION == 1
