"""Tests for the data-driven cluster topology layer.

Three groups of guarantees:

* **Degeneracy** — a single-cluster topology is bit-identical to the
  monolithic baseline, and the canned two-cluster topology reproduces the
  existing golden ladder pins exactly (the topology refactor must not move
  the paper's design point by one cycle).
* **Generalisation** — multi-helper, wider-helper and mixed-clock topologies
  simulate deterministically with N clock domains.
* **Cache-key contract** — the result-cache key is derived from the full
  canonical config (``to_key_dict``), so *any* config field change changes
  the key (the stale-cache bugfix).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.config import (
    ClusterSpec,
    MachineConfig,
    SchedulerConfig,
    Topology,
    baseline_config,
    helper_cluster_config,
    helper_topology,
    monolithic_topology,
    topology_config,
)
from repro.core.steering import make_policy
from repro.pipeline.clocking import ClockingModel
from repro.sim.engine import SweepEngine, SweepJob
from repro.sim.experiment import (
    ExperimentRunner,
    build_topology_grid,
    run_spec_suite,
)
from repro.sim.simulator import simulate
from repro.trace.profiles import get_profile
from repro.trace.synthetic import generate_trace

from test_golden_ladder import MINI_LADDER_SPEEDUPS


# ---------------------------------------------------------------------------
# ClusterSpec / Topology construction
# ---------------------------------------------------------------------------
class TestTopologyConstruction:
    def test_paper_topology_shape(self):
        topology = helper_topology()
        assert len(topology) == 2
        assert topology.host.datapath_width == 32
        assert topology.host.has_fp
        helper = topology.helpers[0]
        assert helper.datapath_width == 8
        assert helper.clock_ratio == 2
        assert not helper.has_fp
        assert topology.narrow_width == 8
        assert topology.max_clock_ratio == 2

    def test_multi_helper_names_and_counts(self):
        topology = helper_topology(helpers=3)
        assert topology.num_helpers == 3
        assert [spec.name for spec in topology.helpers] == [
            "narrow0", "narrow1", "narrow2"]

    def test_host_must_run_at_ratio_one(self):
        with pytest.raises(ValueError):
            Topology((ClusterSpec(name="wide", clock_ratio=2),))

    def test_helper_cannot_be_wider_than_host(self):
        host = ClusterSpec(name="wide", datapath_width=16, has_fp=True)
        with pytest.raises(ValueError):
            Topology((host, ClusterSpec(name="narrow", datapath_width=32)))

    def test_cluster_names_unique(self):
        host = ClusterSpec(name="wide", has_fp=True)
        with pytest.raises(ValueError):
            Topology((host, ClusterSpec(name="wide", datapath_width=8)))

    def test_host_must_have_fp_units(self):
        # Steering keeps FP/MUL/DIV in the host; an FP-less host would
        # deadlock the simulator on the first FP uop, so it is rejected.
        with pytest.raises(ValueError, match="FP"):
            Topology((ClusterSpec(name="wide"),))

    def test_with_scheduler_reaches_explicit_topology(self):
        config = topology_config(helper_topology()).with_scheduler(
            queue_size=16, issue_width=2)
        for spec in config.cluster_topology().clusters:
            assert spec.queue_size == 16
            assert spec.issue_width == 2

    def test_per_cluster_flush_penalty_reaches_recovery(self):
        from repro.pipeline.recovery import RecoveryManager

        manager = RecoveryManager(flush_penalty_slow=5, clock_ratio=2)
        default = manager.trigger(1, 1, fast_cycle=100)
        assert default.refetch_ready_cycle == 110
        override = manager.trigger(2, 2, fast_cycle=100, penalty_slow=20)
        assert override.refetch_ready_cycle == 140

    def test_derived_topology_matches_shim(self):
        config = helper_cluster_config(narrow_width=16, clock_ratio=4)
        topology = config.cluster_topology()
        assert topology.num_helpers == 1
        assert topology.helpers[0].datapath_width == 16
        assert topology.helpers[0].clock_ratio == 4
        assert config.narrow_width == 16
        assert config.clock_ratio == 4

    def test_with_helper_rederives_topology(self):
        config = topology_config(helper_topology(helpers=2))
        assert config.cluster_topology().num_helpers == 2
        with pytest.warns(DeprecationWarning):
            shimmed = config.with_helper(narrow_width=16)
        assert shimmed.cluster_topology().num_helpers == 1
        assert shimmed.narrow_width == 16

    def test_mixed_helper_topology_shapes_and_names(self):
        from repro.core.config import mixed_helper_topology

        topology = mixed_helper_topology([(8, 2), (16, 1), (8, 2)])
        assert [spec.name for spec in topology.helpers] == [
            "n8x2", "n16x1", "n8x2_1"]
        assert topology.narrow_width == 8
        assert topology.max_clock_ratio == 2
        with pytest.raises(ValueError):
            mixed_helper_topology([])


# ---------------------------------------------------------------------------
# N-domain clocking
# ---------------------------------------------------------------------------
class TestMultiDomainClocking:
    def test_from_ratios_paper_point(self):
        clk = ClockingModel.from_ratios([1, 2])
        assert clk.ratio == 2
        assert clk.periods == (2, 1)

    def test_from_ratios_mixed(self):
        clk = ClockingModel.from_ratios([1, 2, 4])
        assert clk.ratio == 4
        assert clk.periods == (4, 2, 1)
        # Domain 1 (2x clock) is active every second fast cycle.
        active = [t for t in range(8) if clk.domain_active(1, t)]
        assert active == [0, 2, 4, 6]
        assert clk.exec_latency(0, 1) == 4
        assert clk.exec_latency(1, 1) == 2
        assert clk.exec_latency(2, 1) == 1
        assert clk.next_active_cycle(1, 3) == 4

    def test_from_ratios_requires_host_at_one(self):
        with pytest.raises(ValueError):
            ClockingModel.from_ratios([2, 2])

    def test_default_model_is_two_domain(self):
        clk = ClockingModel(ratio=3)
        assert clk.periods == (3, 1)


# ---------------------------------------------------------------------------
# Degeneracy: topologies reproduce the original machines bit-identically
# ---------------------------------------------------------------------------
class TestTopologyDegeneracy:
    def test_baseline_simulator_keeps_dormant_narrow_backend(self, tiny_trace):
        # Two-cluster compat: ``sim.narrow`` is a Backend even on the
        # monolithic baseline (dormant, excluded from the cluster list).
        from repro.sim.simulator import HelperClusterSimulator

        sim = HelperClusterSimulator(tiny_trace, config=baseline_config())
        assert len(sim.clusters) == 1
        assert sim.narrow is not None
        assert sim.narrow.is_narrow
        assert len(sim.narrow.issue_queue) == 0

    def test_single_cluster_equals_monolithic_baseline(self, tiny_trace):
        mono = simulate(tiny_trace, config=baseline_config(),
                        policy=make_policy("baseline"))
        topo = simulate(tiny_trace, config=topology_config(monolithic_topology()),
                        policy=make_policy("baseline"))
        assert topo == mono

    def test_two_cluster_topology_equals_shim_config(self, tiny_trace):
        for policy in ("n888", "ir"):
            shim = simulate(tiny_trace, config=helper_cluster_config(),
                            policy=make_policy(policy))
            topo = simulate(tiny_trace, config=topology_config(helper_topology()),
                            policy=make_policy(policy))
            assert topo == shim, f"topology run drifted for {policy}"

    def test_two_cluster_topology_reproduces_golden_pins(self):
        """The canned topology must hit the golden ladder pins exactly."""
        policies = list(MINI_LADDER_SPEEDUPS)
        sweep = run_spec_suite(policies, trace_uops=2500, seed=2006,
                               benchmarks=["gcc"],
                               config=topology_config(helper_topology()))
        for policy, expected in MINI_LADDER_SPEEDUPS.items():
            value = sweep.speedup_series(policy)["gcc"]
            assert value == pytest.approx(expected["gcc"], rel=1e-12), (
                f"gcc/{policy} under the canned topology drifted: "
                f"{value:.12f} != {expected['gcc']:.12f}")


# ---------------------------------------------------------------------------
# Generalised machines actually work
# ---------------------------------------------------------------------------
class TestGeneralisedTopologies:
    def test_two_helper_machine_runs_and_uses_both(self, tiny_trace):
        config = topology_config(helper_topology(helpers=2))
        result = simulate(tiny_trace, config=config, policy=make_policy("ir"))
        assert result.committed_uops == len(tiny_trace)
        assert result.helper_fraction > 0.0
        occ = result.cluster_occupancy
        assert set(occ) == {"wide", "narrow0", "narrow1"}
        assert occ["narrow0"] > 0.0 and occ["narrow1"] > 0.0

    def test_sixteen_bit_helper_one_line_config(self, tiny_trace):
        result = simulate(tiny_trace,
                          config=topology_config(helper_topology(narrow_width=16)),
                          policy=make_policy("ir"))
        assert result.helper_fraction > 0.0
        assert result.slow_cycles > 0

    def test_mixed_clock_ratio_topology(self, tiny_trace):
        host = helper_topology().host
        topology = Topology((
            host,
            ClusterSpec(name="n8", datapath_width=8, clock_ratio=2),
            ClusterSpec(name="n16", datapath_width=16, clock_ratio=4),
        ))
        result = simulate(tiny_trace, config=topology_config(topology),
                          policy=make_policy("ir"))
        # Fast cycles are lcm(1,2,4)=4 per slow cycle.
        assert result.slow_cycles == pytest.approx(result.fast_cycles / 4)
        assert result.helper_fraction > 0.0

    def test_multi_helper_is_deterministic(self, tiny_trace):
        config = topology_config(helper_topology(helpers=2))
        first = simulate(tiny_trace, config=config, policy=make_policy("ir"))
        second = simulate(tiny_trace, config=config, policy=make_policy("ir"))
        assert first == second


# ---------------------------------------------------------------------------
# Design-space exploration through the engine
# ---------------------------------------------------------------------------
class TestTopologyGrid:
    def test_default_grid_has_twelve_points(self):
        points = build_topology_grid()
        assert len(points) == 12
        assert "w8x2h1" in {p.name for p in points}

    def test_grid_sweep_serial_parallel_and_cache(self, tmp_path):
        points = build_topology_grid(widths=[8], ratios=[1, 2],
                                     helper_counts=[1, 2])
        profiles = [get_profile("gcc")]

        serial = ExperimentRunner(trace_uops=1500, seed=2006, jobs=1)
        serial_sweep = serial.run_topology_grid(points, profiles, policy="ir")

        cache_dir = tmp_path / "cache"
        parallel = ExperimentRunner(trace_uops=1500, seed=2006, jobs=2,
                                    cache_dir=str(cache_dir),
                                    allow_oversubscribe=True)
        parallel_sweep = parallel.run_topology_grid(points, profiles, policy="ir")
        for point in points:
            assert parallel_sweep.speedup(point.name, "gcc") == \
                serial_sweep.speedup(point.name, "gcc")

        # A second run over the same grid must be served from the cache.
        rerun = ExperimentRunner(trace_uops=1500, seed=2006, jobs=2,
                                 cache_dir=str(cache_dir),
                                 allow_oversubscribe=True)
        rerun_sweep = rerun.run_topology_grid(points, profiles, policy="ir")
        assert rerun.cache.hits == len(points) + 1  # points + shared baseline
        assert rerun.cache.misses == 0
        for point in points:
            assert rerun_sweep.speedup(point.name, "gcc") == \
                serial_sweep.speedup(point.name, "gcc")


# ---------------------------------------------------------------------------
# Cache-key contract: any config change changes the key
# ---------------------------------------------------------------------------
class TestCanonicalCacheKey:
    def _key(self, config: MachineConfig) -> str:
        engine = SweepEngine(config=config)
        job = SweepJob("gcc", "ir", 1000, 2006)
        return engine.key_for(job)

    def test_any_config_field_change_changes_key(self):
        base = helper_cluster_config()
        base_key = self._key(base)
        variants = {
            "fetch_width": replace(base, fetch_width=8),
            "commit_width": replace(base, commit_width=4),
            "rob_size": replace(base, rob_size=64),
            "scheduler.queue_size": base.with_scheduler(queue_size=16),
            "scheduler.issue_width": base.with_scheduler(issue_width=4),
            "scheduler.memory_ports": base.with_scheduler(memory_ports=1),
            "predictor.table_entries": base.with_predictor(table_entries=512),
            "predictor.use_confidence": base.with_predictor(use_confidence=False),
            "predictor.confidence_threshold":
                base.with_predictor(confidence_threshold=3),
            "helper.narrow_width": base.with_helper(narrow_width=16),
            "helper.clock_ratio": base.with_helper(clock_ratio=1),
            "helper.copy_latency_slow": base.with_helper(copy_latency_slow=3),
            "helper.flush_penalty_slow": base.with_helper(flush_penalty_slow=7),
            "memory.main_memory_latency": replace(
                base, memory=replace(base.memory, main_memory_latency=300)),
            "memory.dl0.hit_latency": replace(
                base, memory=replace(base.memory,
                                     dl0=replace(base.memory.dl0, hit_latency=2))),
            "trace_cache.miss_penalty": replace(
                base, trace_cache=replace(base.trace_cache, miss_penalty=20)),
            "topology.helpers": base.with_topology(helper_topology(helpers=2)),
            "topology.cluster_queue": base.with_topology(Topology((
                helper_topology().host,
                replace(helper_topology().helpers[0], queue_size=16)))),
        }
        keys = {"base": base_key}
        for label, config in variants.items():
            key = self._key(config)
            assert key != base_key, f"{label} change did not change the cache key"
            keys[label] = key
        assert len(set(keys.values())) == len(keys), "distinct configs collided"

    def test_key_stable_for_equal_configs(self):
        assert self._key(helper_cluster_config()) == \
            self._key(helper_cluster_config())

    def test_explicit_paper_topology_and_shim_key_apart(self):
        # Equivalent machines, but distinct descriptions: the key must not
        # conflate them (conservative misses are fine; stale hits are not).
        shim = self._key(helper_cluster_config())
        explicit = self._key(topology_config(helper_topology()))
        assert shim != explicit

    def test_job_carried_config_overrides_engine_config(self):
        engine = SweepEngine(config=helper_cluster_config())
        plain = SweepJob("gcc", "ir", 1000, 2006)
        carried = SweepJob("gcc", "ir", 1000, 2006,
                           config=topology_config(helper_topology(helpers=2)))
        assert engine.key_for(plain) != engine.key_for(carried)

    def test_baseline_key_ignores_helper_config(self):
        # The baseline policy always runs the monolithic machine, so two
        # engines that differ only in helper topology share baseline entries.
        job = SweepJob("gcc", "baseline", 1000, 2006)
        first = SweepEngine(config=helper_cluster_config()).key_for(job)
        second = SweepEngine(
            config=topology_config(helper_topology(helpers=2))).key_for(job)
        assert first == second
