"""Build configuration.

The only non-trivial piece is the *optional* C extension
``repro._corekernel`` (the compiled simulator backend, see DESIGN.md,
"Hot state & compiled core").  The package is pure python by contract:
a missing compiler, missing Python headers or a failing compile must
never break installation — the simulator transparently falls back to
the pure-python backend (``REPRO_BACKEND`` selects explicitly).

Build in place with::

    python setup.py build_ext --inplace

Sanitizer builds (the CI ASan/UBSan job, or local debugging of the
PyCapsule buffer re-acquisition contract) are selected with::

    REPRO_SANITIZE=address,undefined python setup.py build_ext --inplace

which compiles and links the extension with ``-fsanitize=<list>``
``-fno-omit-frame-pointer -g``.  Running the sanitized extension under a
non-sanitized python requires preloading the ASan runtime, e.g.::

    LD_PRELOAD="$(gcc -print-file-name=libasan.so)" \\
    ASAN_OPTIONS=detect_leaks=0 \\
    REPRO_BACKEND=compiled PYTHONPATH=src python -m pytest tests/test_event_wheel.py
"""

import os
import warnings

from setuptools import Extension, find_packages, setup
from setuptools.command.build_ext import build_ext


def sanitize_flags():
    """(compile_args, link_args) from the REPRO_SANITIZE env knob."""
    spec = os.environ.get("REPRO_SANITIZE", "").strip()
    if not spec:
        return [], []
    sanitizers = ",".join(
        part.strip() for part in spec.split(",") if part.strip())
    flag = f"-fsanitize={sanitizers}"
    return [flag, "-fno-omit-frame-pointer", "-g"], [flag]


class OptionalBuildExt(build_ext):
    """Build the accelerator extension if possible; never fail the build."""

    def run(self):
        try:
            super().run()
        except Exception as exc:
            warnings.warn(
                f"skipping optional C extension build ({exc!r}); "
                f"the pure-python simulator backend will be used")

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:
            warnings.warn(
                f"skipping optional C extension {ext.name} ({exc!r}); "
                f"the pure-python simulator backend will be used")


_SAN_COMPILE, _SAN_LINK = sanitize_flags()

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    ext_modules=[
        Extension(
            "repro._corekernel",
            sources=["src/repro/_corekernel.c"],
            extra_compile_args=_SAN_COMPILE,
            extra_link_args=_SAN_LINK,
            optional=True,
        ),
    ],
    cmdclass={"build_ext": OptionalBuildExt},
)
