"""Build configuration.

The only non-trivial piece is the *optional* C extension
``repro._corekernel`` (the compiled simulator backend, see DESIGN.md,
"Hot state & compiled core").  The package is pure python by contract:
a missing compiler, missing Python headers or a failing compile must
never break installation — the simulator transparently falls back to
the pure-python backend (``REPRO_BACKEND`` selects explicitly).

Build in place with::

    python setup.py build_ext --inplace
"""

import warnings

from setuptools import Extension, find_packages, setup
from setuptools.command.build_ext import build_ext


class OptionalBuildExt(build_ext):
    """Build the accelerator extension if possible; never fail the build."""

    def run(self):
        try:
            super().run()
        except Exception as exc:
            warnings.warn(
                f"skipping optional C extension build ({exc!r}); "
                f"the pure-python simulator backend will be used")

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:
            warnings.warn(
                f"skipping optional C extension {ext.name} ({exc!r}); "
                f"the pure-python simulator backend will be used")


setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    ext_modules=[
        Extension(
            "repro._corekernel",
            sources=["src/repro/_corekernel.c"],
            optional=True,
        ),
    ],
    cmdclass={"build_ext": OptionalBuildExt},
)
